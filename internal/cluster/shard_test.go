package cluster

import (
	"fmt"
	"testing"
	"time"

	"agilepower/internal/host"
	"agilepower/internal/sim"
	"agilepower/internal/telemetry"
	"agilepower/internal/vm"
	"agilepower/internal/workload"
)

// runShardScenario simulates an eventful half-day — migrations, a host
// crash with stranded VMs, dynamic arrival/placement, a departure —
// on a cluster configured with the given shard/worker counts, and
// returns the cluster for result comparison.
func runShardScenario(t testing.TB, shards, workers int) *Cluster {
	t.Helper()
	return runEvalScenario(t, shards, workers, false)
}

// runEvalScenario is runShardScenario with the evaluation mode
// explicit, so the delta tests share the exact same event sequence.
func runEvalScenario(t testing.TB, shards, workers int, delta bool) *Cluster {
	t.Helper()
	eng := sim.NewEngine(1)
	c, err := New(eng, Config{Horizon: 12 * time.Hour, Shards: shards, EvalWorkers: workers, Delta: delta})
	if err != nil {
		t.Fatal(err)
	}
	for h := 0; h < 8; h++ {
		if _, err := c.AddHost(host.Config{Cores: 16, MemoryGB: 256}); err != nil {
			t.Fatal(err)
		}
	}
	rng := sim.NewRNG(7)
	for v := 0; v < 24; v++ {
		tr := workload.Diurnal(rng.Fork(), workload.DiurnalSpec{BaseCores: 0.4, PeakCores: 3})
		if _, err := c.AddVM(vm.Config{VCPUs: 4, MemoryGB: 8, Trace: tr}, host.ID(v%8+1)); err != nil {
			t.Fatal(err)
		}
	}
	c.Start()
	eng.RunUntil(1 * time.Hour)
	if err := c.StartMigration(1, 2); err != nil {
		t.Fatal(err)
	}
	eng.RunUntil(2 * time.Hour)
	if err := c.CrashHost(5, 10*time.Minute); err != nil {
		t.Fatal(err)
	}
	eng.RunUntil(3 * time.Hour)
	nv, err := c.AddPendingVM(vm.Config{VCPUs: 4, MemoryGB: 8, Trace: workload.Constant(1)})
	if err != nil {
		t.Fatal(err)
	}
	eng.RunUntil(3*time.Hour + 5*time.Minute)
	if err := c.PlaceVM(nv.ID(), 3); err != nil {
		t.Fatal(err)
	}
	if err := c.RemoveVM(10); err != nil {
		t.Fatal(err)
	}
	eng.RunUntil(12 * time.Hour)
	c.Flush()
	c.Close()
	return c
}

func sameSeries(t *testing.T, label string, a, b *telemetry.Series) {
	t.Helper()
	ap, bp := a.Points(), b.Points()
	if len(ap) != len(bp) {
		t.Fatalf("%s: %d samples vs %d", label, len(ap), len(bp))
	}
	for i := range ap {
		if ap[i] != bp[i] {
			t.Fatalf("%s: sample %d differs: %+v vs %+v", label, i, ap[i], bp[i])
		}
	}
}

// TestShardedEvaluateBitIdentical is the determinism core of the
// sharded tick: every telemetry series, the aggregate SLA, energy, and
// stranded-time accounting must be bit-for-bit identical across shard
// counts {1, 2, 4} × worker counts {1, 3}, and identical to the
// serial (shards = 0) path.
func TestShardedEvaluateBitIdentical(t *testing.T) {
	ref := runShardScenario(t, 0, 0)
	for _, shards := range []int{1, 2, 4} {
		for _, workers := range []int{1, 3} {
			t.Run(fmt.Sprintf("shards=%d/workers=%d", shards, workers), func(t *testing.T) {
				got := runShardScenario(t, shards, workers)
				sameSeries(t, "power", ref.PowerSeries(), got.PowerSeries())
				sameSeries(t, "demand", ref.DemandSeries(), got.DemandSeries())
				sameSeries(t, "delivered", ref.DeliveredSeries(), got.DeliveredSeries())
				sameSeries(t, "active", ref.ActiveHostSeries(), got.ActiveHostSeries())
				if ra, ga := *ref.AggregateSLA(), *got.AggregateSLA(); ra != ga {
					t.Fatalf("aggregate SLA differs: %+v vs %+v", ra, ga)
				}
				if re, ge := ref.TotalEnergy(), got.TotalEnergy(); re != ge {
					t.Fatalf("energy differs: %v vs %v", re, ge)
				}
				if rs, gs := ref.StrandedVMSeconds(), got.StrandedVMSeconds(); rs != gs {
					t.Fatalf("stranded VM·s differs: %v vs %v", rs, gs)
				}
			})
		}
	}
}

// TestShardsClampedToHostCount checks that asking for more shards than
// hosts degrades gracefully (one single-host shard each) and still
// matches the serial results.
func TestShardsClampedToHostCount(t *testing.T) {
	ref := runShardScenario(t, 0, 0)
	got := runShardScenario(t, 64, 64)
	sameSeries(t, "power", ref.PowerSeries(), got.PowerSeries())
	if n := len(got.shardBounds); n != 8 {
		t.Fatalf("shard count = %d, want clamped to 8 hosts", n)
	}
	for i, b := range got.shardBounds {
		if b.hi-b.lo != 1 {
			t.Fatalf("shard %d spans %d hosts, want 1", i, b.hi-b.lo)
		}
	}
}

// TestEvaluateAfterCloseFallsBackSerial checks that Close is safe to
// call before the last evaluation: later ticks take the serial branch
// instead of deadlocking on the drained worker pool.
func TestEvaluateAfterCloseFallsBackSerial(t *testing.T) {
	eng := sim.NewEngine(1)
	c, err := New(eng, Config{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	for h := 0; h < 4; h++ {
		if _, err := c.AddHost(host.Config{Cores: 16, MemoryGB: 256}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := c.AddVM(vm.Config{VCPUs: 4, MemoryGB: 8, Trace: workload.Constant(1)}, 1); err != nil {
		t.Fatal(err)
	}
	c.Start()
	eng.RunUntil(10 * time.Minute)
	c.Close()
	c.Close() // idempotent
	eng.RunUntil(20 * time.Minute)
	c.Flush()
	if c.PowerSeries().Len() == 0 {
		t.Fatal("no samples recorded")
	}
}

// TestShardedEvaluateSteadyStateAllocFree re-runs the PR 3 allocation
// gate against the sharded path: with the partition built and the
// workers parked, a steady-state tick must stay off the heap —
// dispatch and completion ride preallocated buffered channels, and
// every partial lands in a preallocated per-host slot.
func TestShardedEvaluateSteadyStateAllocFree(t *testing.T) {
	eng := sim.NewEngine(1)
	c, err := New(eng, Config{Horizon: 30 * 24 * time.Hour, Shards: 4, EvalWorkers: 2})
	if err != nil {
		t.Fatal(err)
	}
	for h := 0; h < 16; h++ {
		if _, err := c.AddHost(host.Config{Cores: 16, MemoryGB: 256}); err != nil {
			t.Fatal(err)
		}
	}
	rng := sim.NewRNG(1)
	for v := 0; v < 80; v++ {
		tr := workload.Diurnal(rng.Fork(), workload.DiurnalSpec{BaseCores: 0.4, PeakCores: 3})
		if _, err := c.AddVM(vm.Config{VCPUs: 4, MemoryGB: 8, Trace: tr}, host.ID(v%16+1)); err != nil {
			t.Fatal(err)
		}
	}
	// Build the partition and worker pool without scheduling the
	// periodic tick, so the clock can be advanced manually and each
	// measured run is exactly one sharded evaluation.
	c.startEval()
	if len(c.shardBounds) != 4 {
		t.Fatalf("shard count = %d, want 4", len(c.shardBounds))
	}
	now := eng.Now()
	c.evaluate()
	now += sim.Time(time.Minute)
	eng.RunUntil(now)
	c.evaluate()

	avg := testing.AllocsPerRun(200, func() {
		now += sim.Time(time.Minute)
		eng.RunUntil(now)
		c.evaluate()
	})
	if avg != 0 {
		t.Fatalf("sharded steady-state evaluate allocates %.2f times per tick, want 0", avg)
	}
	c.Close()
}
