package cluster

import (
	"testing"
	"time"

	"agilepower/internal/sim"
)

func TestStartMigrationFromUnavailableSourceRejected(t *testing.T) {
	// A manager acting on a stale view can order a move off a host that
	// has since crashed. The frozen VM cannot be pre-copied; the order
	// must be rejected cleanly, leaving no half-started migration.
	eng, c := newTestCluster(t, 2)
	v := addVM(t, c, 1, 4)
	c.Start()
	eng.RunUntil(sim.Time(10 * time.Minute))

	if err := c.CrashHost(1, time.Hour); err != nil {
		t.Fatal(err)
	}
	if err := c.StartMigration(v.ID(), 2); err == nil {
		t.Fatal("migration accepted off a crashed source")
	}
	if c.Migrating(v.ID()) {
		t.Fatal("rejected migration left the VM marked migrating")
	}
	// The destination must not be left holding a reservation.
	h, _ := c.Host(2)
	if h.NumVMs() != 0 {
		t.Fatalf("destination holds %d VMs after rejected migration", h.NumVMs())
	}
	if err := c.CheckInvariants(); err != nil {
		t.Fatalf("invariants broken after rejected migration: %v", err)
	}
	// Once the source is repaired, the same order goes through.
	eng.RunUntil(sim.Time(10*time.Minute + time.Hour))
	c.Flush()
	if err := c.StartMigration(v.ID(), 2); err != nil {
		t.Fatalf("migration off repaired source rejected: %v", err)
	}
}
