package cluster

import (
	"math"
	"testing"
	"time"

	"agilepower/internal/host"
	"agilepower/internal/power"
	"agilepower/internal/sim"
	"agilepower/internal/vm"
	"agilepower/internal/workload"
)

func newTestCluster(t *testing.T, hosts int) (*sim.Engine, *Cluster) {
	t.Helper()
	eng := sim.NewEngine(1)
	c, err := New(eng, Config{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < hosts; i++ {
		if _, err := c.AddHost(host.Config{Cores: 16, MemoryGB: 64}); err != nil {
			t.Fatal(err)
		}
	}
	return eng, c
}

func addVM(t *testing.T, c *Cluster, on host.ID, demand float64) *vm.VM {
	t.Helper()
	v, err := c.AddVM(vm.Config{VCPUs: 8, MemoryGB: 8, Trace: workload.Constant(demand)}, on)
	if err != nil {
		t.Fatal(err)
	}
	return v
}

func TestAddHostAndVM(t *testing.T) {
	_, c := newTestCluster(t, 2)
	v := addVM(t, c, 1, 2)
	if len(c.Hosts()) != 2 || len(c.VMs()) != 1 {
		t.Fatal("inventory wrong")
	}
	hid, ok := c.Placement(v.ID())
	if !ok || hid != 1 {
		t.Fatalf("placement = %v/%v", hid, ok)
	}
	h, _ := c.Host(1)
	if h.NumVMs() != 1 {
		t.Fatal("VM not on host")
	}
	if _, ok := c.VM(v.ID()); !ok {
		t.Fatal("VM lookup failed")
	}
	if _, ok := c.SLA(v.ID()); !ok {
		t.Fatal("SLA tracker missing")
	}
}

func TestAddVMUnknownHost(t *testing.T) {
	_, c := newTestCluster(t, 1)
	if _, err := c.AddVM(vm.Config{VCPUs: 1, MemoryGB: 1, Trace: workload.Constant(1)}, 99); err == nil {
		t.Fatal("accepted unknown host")
	}
}

func TestAddHostAfterStartRejected(t *testing.T) {
	_, c := newTestCluster(t, 1)
	c.Start()
	if _, err := c.AddHost(host.Config{Cores: 4, MemoryGB: 16}); err == nil {
		t.Fatal("AddHost after Start accepted")
	}
}

func TestSteadyStateEnergyAndSLA(t *testing.T) {
	eng, c := newTestCluster(t, 1)
	addVM(t, c, 1, 8) // util 0.5 → 200 W on default profile
	c.Start()
	eng.RunUntil(time.Hour)
	c.Flush()

	wantJ := 200.0 * 3600
	if got := float64(c.TotalEnergy()); math.Abs(got-wantJ) > 1 {
		t.Fatalf("energy = %v J, want %v J", got, wantJ)
	}
	agg := c.AggregateSLA()
	if agg.Satisfaction() != 1 {
		t.Fatalf("satisfaction = %v, want 1", agg.Satisfaction())
	}
	if agg.DemandCoreSeconds() != 8*3600 {
		t.Fatalf("demand = %v core-s, want %v", agg.DemandCoreSeconds(), 8*3600)
	}
}

func TestOversubscriptionCausesViolations(t *testing.T) {
	eng, c := newTestCluster(t, 1)
	// Three VMs × 8 cores demand on a 16-core host.
	for i := 0; i < 3; i++ {
		addVM(t, c, 1, 8)
	}
	c.Start()
	eng.RunUntil(time.Hour)
	c.Flush()
	agg := c.AggregateSLA()
	if got := agg.Satisfaction(); math.Abs(got-16.0/24) > 0.01 {
		t.Fatalf("satisfaction = %v, want ~0.667", got)
	}
	if agg.ViolationFraction() < 0.99 {
		t.Fatalf("violation fraction = %v, want ~1", agg.ViolationFraction())
	}
}

func TestMigrationMovesVM(t *testing.T) {
	eng, c := newTestCluster(t, 2)
	v := addVM(t, c, 1, 2)
	c.Start()
	eng.RunUntil(time.Minute)
	if err := c.StartMigration(v.ID(), 2); err != nil {
		t.Fatal(err)
	}
	if !c.Migrating(v.ID()) {
		t.Fatal("VM not marked migrating")
	}
	// 8 GB at 10 Gbps converges in well under a minute.
	eng.RunUntil(3 * time.Minute)
	if c.Migrating(v.ID()) {
		t.Fatal("migration never completed")
	}
	hid, _ := c.Placement(v.ID())
	if hid != 2 {
		t.Fatalf("placement = %d, want 2", hid)
	}
	h1, _ := c.Host(1)
	h2, _ := c.Host(2)
	if h1.NumVMs() != 0 || h2.NumVMs() != 1 {
		t.Fatal("hosts out of sync with placement")
	}
	if h2.MemFreeGB() != 64-8 {
		t.Fatalf("dest memory = %v", h2.MemFreeGB())
	}
	st := c.Migrations().Stats()
	if st.Completed != 1 || st.TotalDowntime <= 0 {
		t.Fatalf("migration stats = %+v", st)
	}
	// Downtime was charged to the VM's SLA.
	sla, _ := c.SLA(v.ID())
	if sla.ViolationTime() < st.TotalDowntime {
		t.Fatalf("downtime not charged: %v < %v", sla.ViolationTime(), st.TotalDowntime)
	}
}

func TestMigrationRejectsBadRequests(t *testing.T) {
	eng, c := newTestCluster(t, 3)
	v := addVM(t, c, 1, 2)
	c.Start()

	if err := c.StartMigration(99, 2); err == nil {
		t.Fatal("unknown VM accepted")
	}
	if err := c.StartMigration(v.ID(), 99); err == nil {
		t.Fatal("unknown destination accepted")
	}
	if err := c.StartMigration(v.ID(), 1); err == nil {
		t.Fatal("same-host migration accepted")
	}
	// Sleeping destination.
	if err := c.SleepHost(3, power.S3); err != nil {
		t.Fatal(err)
	}
	if err := c.StartMigration(v.ID(), 3); err == nil {
		t.Fatal("migration to sleeping host accepted")
	}
	// Double migration.
	if err := c.StartMigration(v.ID(), 2); err != nil {
		t.Fatal(err)
	}
	if err := c.StartMigration(v.ID(), 2); err == nil {
		t.Fatal("double migration accepted")
	}
	_ = eng
}

func TestMigrationReservesDestinationMemory(t *testing.T) {
	eng, c := newTestCluster(t, 2)
	// Fill host 2 to 60/64 GB.
	big, err := c.AddVM(vm.Config{VCPUs: 8, MemoryGB: 60, Trace: workload.Constant(1)}, 2)
	if err != nil {
		t.Fatal(err)
	}
	_ = big
	v := addVM(t, c, 1, 1) // 8 GB on host 1
	c.Start()
	if err := c.StartMigration(v.ID(), 2); err == nil {
		t.Fatal("migration accepted without destination memory")
	}
	_ = eng
}

func TestSleepRequiresEmptyHost(t *testing.T) {
	_, c := newTestCluster(t, 2)
	addVM(t, c, 1, 2)
	c.Start()
	if err := c.SleepHost(1, power.S3); err == nil {
		t.Fatal("slept a host with VMs")
	}
	if err := c.SleepHost(2, power.S3); err != nil {
		t.Fatalf("empty host refused to sleep: %v", err)
	}
	if err := c.SleepHost(99, power.S3); err == nil {
		t.Fatal("unknown host accepted")
	}
}

func TestSleepRejectedWithInboundMigration(t *testing.T) {
	_, c := newTestCluster(t, 2)
	v := addVM(t, c, 1, 2)
	c.Start()
	if err := c.StartMigration(v.ID(), 2); err != nil {
		t.Fatal(err)
	}
	// Host 2 has no VMs yet but has an inbound reservation.
	if err := c.SleepHost(2, power.S3); err == nil {
		t.Fatal("slept a host with inbound migration")
	}
}

func TestWakeHostLifecycleAndCallback(t *testing.T) {
	eng, c := newTestCluster(t, 2)
	addVM(t, c, 1, 2)
	c.Start()

	var settled []host.ID
	c.OnHostSettled(func(id host.ID, st power.State) {
		if st == power.S0 {
			settled = append(settled, id)
		}
	})

	if err := c.SleepHost(2, power.S3); err != nil {
		t.Fatal(err)
	}
	eng.RunUntil(10 * time.Second) // entry done at 8s
	h2, _ := c.Host(2)
	if h2.Machine().State() != power.S3 {
		t.Fatalf("host 2 state = %v", h2.Machine().State())
	}
	if len(c.AvailableHosts()) != 1 {
		t.Fatal("sleeping host counted available")
	}
	if err := c.WakeHost(2); err != nil {
		t.Fatal(err)
	}
	eng.RunUntil(30 * time.Second) // exit latency 15s
	if !h2.Available() {
		t.Fatal("host 2 not available after wake")
	}
	if len(settled) != 1 || settled[0] != 2 {
		t.Fatalf("settle callbacks = %v", settled)
	}
	if err := c.WakeHost(99); err == nil {
		t.Fatal("unknown host accepted")
	}
	entries, exits := c.PowerActions()
	if entries != 1 || exits != 1 {
		t.Fatalf("power actions = %d/%d", entries, exits)
	}
}

func TestSleepingHostSavesEnergy(t *testing.T) {
	eng, c := newTestCluster(t, 2)
	c.Start()
	if err := c.SleepHost(2, power.S3); err != nil {
		t.Fatal(err)
	}
	eng.RunUntil(time.Hour)
	c.Flush()
	h1, _ := c.Host(1)
	h2, _ := c.Host(2)
	if h2.Machine().Energy() >= h1.Machine().Energy() {
		t.Fatalf("sleeping host used %v J vs awake %v J", h2.Machine().Energy(), h1.Machine().Energy())
	}
}

func TestTelemetrySeriesPopulated(t *testing.T) {
	eng, c := newTestCluster(t, 2)
	addVM(t, c, 1, 4)
	c.Start()
	eng.RunUntil(10 * time.Minute)
	c.Flush()
	if c.PowerSeries().Len() < 10 {
		t.Fatalf("power series has %d samples", c.PowerSeries().Len())
	}
	if c.DemandSeries().At(5*time.Minute) != 4 {
		t.Fatalf("demand series = %v", c.DemandSeries().At(5*time.Minute))
	}
	if c.DeliveredSeries().At(5*time.Minute) != 4 {
		t.Fatalf("delivered series = %v", c.DeliveredSeries().At(5*time.Minute))
	}
	if c.ActiveHostSeries().At(5*time.Minute) != 2 {
		t.Fatalf("active series = %v", c.ActiveHostSeries().At(5*time.Minute))
	}
	// Power series should match TotalPower at eval instants:
	// host1 at util 4/16=0.25 → 175 W; host2 deep-idle 120 W.
	if got := c.PowerSeries().At(5 * time.Minute); got != 295 {
		t.Fatalf("power sample = %v, want 295", got)
	}
}

func TestTotalsAndTimeVaryingDemand(t *testing.T) {
	eng := sim.NewEngine(1)
	c, err := New(eng, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.AddHost(host.Config{Cores: 16, MemoryGB: 64}); err != nil {
		t.Fatal(err)
	}
	tr, _ := workload.NewTrace(time.Minute, []float64{2, 6})
	if _, err := c.AddVM(vm.Config{VCPUs: 8, MemoryGB: 8, Trace: tr}, 1); err != nil {
		t.Fatal(err)
	}
	c.Start()
	if c.TotalDemand() != 2 {
		t.Fatalf("demand(0) = %v", c.TotalDemand())
	}
	eng.RunUntil(90 * time.Second)
	if c.TotalDemand() != 6 {
		t.Fatalf("demand(90s) = %v", c.TotalDemand())
	}
	c.Flush()
	// Energy: first minute at util 2/16 → P=150+12.5=162.5; 30s at
	// util 6/16 → 187.5.
	want := 162.5*60 + 187.5*30
	if got := float64(c.TotalEnergy()); math.Abs(got-want) > 1 {
		t.Fatalf("energy = %v, want %v", got, want)
	}
	if got := float64(c.TotalPower()); got != 187.5 {
		t.Fatalf("power = %v, want 187.5", got)
	}
}
