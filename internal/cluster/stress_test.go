package cluster

import (
	"testing"
	"time"

	"agilepower/internal/host"
	"agilepower/internal/power"
	"agilepower/internal/sim"
	"agilepower/internal/vm"
	"agilepower/internal/workload"
)

// TestInvariantsHoldOnQuietCluster is the baseline sanity check.
func TestInvariantsHoldOnQuietCluster(t *testing.T) {
	eng, c := newTestCluster(t, 3)
	addVM(t, c, 1, 2)
	c.Start()
	eng.RunUntil(time.Hour)
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestStressRandomOperations hammers the cluster with random
// lifecycle, migration and power actions, checking every structural
// invariant after each event. Operations are allowed to fail (the
// cluster rejects invalid requests); corruption is not.
func TestStressRandomOperations(t *testing.T) {
	eng := sim.NewEngine(12345)
	c, err := New(eng, Config{})
	if err != nil {
		t.Fatal(err)
	}
	const hosts = 6
	for i := 0; i < hosts; i++ {
		if _, err := c.AddHost(host.Config{Cores: 16, MemoryGB: 64}); err != nil {
			t.Fatal(err)
		}
	}
	rng := sim.NewRNG(99)
	var vms []vm.ID
	for i := 0; i < 10; i++ {
		v, err := c.AddVM(vm.Config{
			VCPUs:    4,
			MemoryGB: rng.Range(2, 12),
			Trace:    workload.Constant(rng.Range(0, 3)),
		}, host.ID(rng.Intn(hosts)+1))
		if err == nil {
			vms = append(vms, v.ID())
		}
	}
	c.Start()

	check := func(op string) {
		t.Helper()
		if err := c.CheckInvariants(); err != nil {
			t.Fatalf("invariant broken after %s at %v: %v", op, eng.Now(), err)
		}
	}
	check("setup")

	for step := 0; step < 800; step++ {
		eng.RunUntil(eng.Now() + time.Duration(rng.Intn(120)+1)*time.Second)
		switch rng.Intn(7) {
		case 0: // migrate a random VM somewhere
			if len(vms) > 0 {
				id := vms[rng.Intn(len(vms))]
				dst := host.ID(rng.Intn(hosts) + 1)
				_ = c.StartMigration(id, dst)
			}
		case 1: // sleep a random host
			hid := host.ID(rng.Intn(hosts) + 1)
			st := power.S3
			if rng.Intn(2) == 0 {
				st = power.S5
			}
			_ = c.SleepHost(hid, st)
		case 2: // wake a random host
			_ = c.WakeHost(host.ID(rng.Intn(hosts) + 1))
		case 3: // new pending VM
			v, err := c.AddPendingVM(vm.Config{
				VCPUs:    4,
				MemoryGB: rng.Range(2, 12),
				Trace:    workload.Constant(rng.Range(0, 3)),
			})
			if err == nil {
				vms = append(vms, v.ID())
			}
		case 4: // place a pending VM
			if p := c.PendingVMs(); len(p) > 0 {
				_ = c.PlaceVM(p[rng.Intn(len(p))], host.ID(rng.Intn(hosts)+1))
			}
		case 5: // remove a random VM
			if len(vms) > 0 {
				i := rng.Intn(len(vms))
				if err := c.RemoveVM(vms[i]); err == nil {
					vms = append(vms[:i], vms[i+1:]...)
				}
			}
		case 6: // just advance time
		}
		check("op")
	}
	// Drain: let everything settle, then final check.
	eng.RunUntil(eng.Now() + time.Hour)
	c.Flush()
	check("final")
}

// TestStressDeterminism runs the same stress sequence twice and
// compares the outcome exactly.
func TestStressDeterminism(t *testing.T) {
	run := func() (float64, int) {
		eng := sim.NewEngine(7)
		c, _ := New(eng, Config{})
		for i := 0; i < 4; i++ {
			c.AddHost(host.Config{Cores: 16, MemoryGB: 64})
		}
		rng := sim.NewRNG(42)
		var vms []vm.ID
		for i := 0; i < 6; i++ {
			v, err := c.AddVM(vm.Config{VCPUs: 4, MemoryGB: 8, Trace: workload.Constant(rng.Range(0, 3))}, host.ID(i%4+1))
			if err == nil {
				vms = append(vms, v.ID())
			}
		}
		c.Start()
		for step := 0; step < 200; step++ {
			eng.RunUntil(eng.Now() + time.Duration(rng.Intn(60)+1)*time.Second)
			switch rng.Intn(3) {
			case 0:
				if len(vms) > 0 {
					_ = c.StartMigration(vms[rng.Intn(len(vms))], host.ID(rng.Intn(4)+1))
				}
			case 1:
				_ = c.SleepHost(host.ID(rng.Intn(4)+1), power.S3)
			case 2:
				_ = c.WakeHost(host.ID(rng.Intn(4) + 1))
			}
		}
		c.Flush()
		return float64(c.TotalEnergy()), c.Migrations().Stats().Completed
	}
	e1, m1 := run()
	e2, m2 := run()
	if e1 != e2 || m1 != m2 {
		t.Fatalf("stress runs diverged: %v/%d vs %v/%d", e1, m1, e2, m2)
	}
}
