package cluster

import (
	"testing"
	"time"

	"agilepower/internal/host"
	"agilepower/internal/vm"
	"agilepower/internal/workload"
)

func TestPendingVMLifecycle(t *testing.T) {
	eng, c := newTestCluster(t, 2)
	c.Start()
	eng.RunUntil(10 * time.Minute)

	v, err := c.AddPendingVM(vm.Config{VCPUs: 4, MemoryGB: 8, Trace: workload.Constant(2)})
	if err != nil {
		t.Fatal(err)
	}
	pend := c.PendingVMs()
	if len(pend) != 1 || pend[0] != v.ID() {
		t.Fatalf("pending = %v", pend)
	}
	if _, placed := c.Placement(v.ID()); placed {
		t.Fatal("pending VM has a placement")
	}
	// Pending demand is charged as unserved.
	eng.RunUntil(20 * time.Minute)
	c.Flush()
	sla, _ := c.SLA(v.ID())
	if sla.Satisfaction() != 0 {
		t.Fatalf("pending VM satisfaction = %v, want 0", sla.Satisfaction())
	}
	if sla.ViolationTime() != 10*time.Minute {
		t.Fatalf("pending violation time = %v, want 10m", sla.ViolationTime())
	}
	// Demand series includes the pending VM.
	if got := c.DemandSeries().At(15 * time.Minute); got != 2 {
		t.Fatalf("demand with pending VM = %v, want 2", got)
	}

	// Place it; provisioning latency is recorded.
	if err := c.PlaceVM(v.ID(), 1); err != nil {
		t.Fatal(err)
	}
	if len(c.PendingVMs()) != 0 {
		t.Fatal("still pending after placement")
	}
	lats := c.ProvisionLatencies()
	if len(lats) != 1 || lats[0] != 10*time.Minute {
		t.Fatalf("provision latencies = %v, want [10m]", lats)
	}
	hid, _ := c.Placement(v.ID())
	if hid != 1 {
		t.Fatalf("placement = %v", hid)
	}
	// Served from now on.
	eng.RunUntil(30 * time.Minute)
	c.Flush()
	if got := c.DeliveredSeries().At(25 * time.Minute); got != 2 {
		t.Fatalf("delivered = %v, want 2", got)
	}
}

func TestPlaceVMErrors(t *testing.T) {
	eng, c := newTestCluster(t, 2)
	c.Start()
	placed := addVM(t, c, 1, 1)
	if err := c.PlaceVM(placed.ID(), 2); err == nil {
		t.Fatal("placed a non-pending VM")
	}
	v, _ := c.AddPendingVM(vm.Config{VCPUs: 1, MemoryGB: 8, Trace: workload.Constant(1)})
	if err := c.PlaceVM(v.ID(), 99); err == nil {
		t.Fatal("placed on unknown host")
	}
	// Sleeping host refused.
	if err := c.SleepHost(2, 1 /* S3 */); err != nil {
		t.Fatal(err)
	}
	if err := c.PlaceVM(v.ID(), 2); err == nil {
		t.Fatal("placed on sleeping host")
	}
	_ = eng
}

func TestPlaceVMMemoryAdmission(t *testing.T) {
	_, c := newTestCluster(t, 1)
	c.Start()
	v, err := c.AddPendingVM(vm.Config{VCPUs: 1, MemoryGB: 100, Trace: workload.Constant(1)})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.PlaceVM(v.ID(), 1); err == nil {
		t.Fatal("placed VM larger than host memory (64GB)")
	}
	if len(c.PendingVMs()) != 1 {
		t.Fatal("failed placement should leave VM pending")
	}
}

func TestRemoveVMPlaced(t *testing.T) {
	eng, c := newTestCluster(t, 1)
	v := addVM(t, c, 1, 4)
	c.Start()
	eng.RunUntil(10 * time.Minute)
	if err := c.RemoveVM(v.ID()); err != nil {
		t.Fatal(err)
	}
	if c.Departed() != 1 {
		t.Fatalf("departed = %d", c.Departed())
	}
	if _, ok := c.VM(v.ID()); ok {
		t.Fatal("VM still in inventory")
	}
	h, _ := c.Host(1)
	if h.NumVMs() != 0 || h.MemFreeGB() != 64 {
		t.Fatal("host not released")
	}
	// Final interval was charged before removal.
	agg := c.AggregateSLA()
	if agg.DemandCoreSeconds() != 4*600 {
		t.Fatalf("departed VM demand = %v core-s, want %v", agg.DemandCoreSeconds(), 4*600)
	}
	// Demand drops after departure.
	eng.RunUntil(20 * time.Minute)
	c.Flush()
	if got := c.DemandSeries().At(15 * time.Minute); got != 0 {
		t.Fatalf("demand after departure = %v", got)
	}
}

func TestRemoveVMPendingAndUnknown(t *testing.T) {
	_, c := newTestCluster(t, 1)
	c.Start()
	v, _ := c.AddPendingVM(vm.Config{VCPUs: 1, MemoryGB: 8, Trace: workload.Constant(1)})
	if err := c.RemoveVM(v.ID()); err != nil {
		t.Fatal(err)
	}
	if len(c.PendingVMs()) != 0 {
		t.Fatal("pending not cleared")
	}
	if err := c.RemoveVM(999); err == nil {
		t.Fatal("removed unknown VM")
	}
}

func TestRemoveVMRefusedWhileMigrating(t *testing.T) {
	eng, c := newTestCluster(t, 2)
	v := addVM(t, c, 1, 2)
	c.Start()
	if err := c.StartMigration(v.ID(), 2); err != nil {
		t.Fatal(err)
	}
	if err := c.RemoveVM(v.ID()); err == nil {
		t.Fatal("removed a migrating VM")
	}
	eng.RunUntil(5 * time.Minute) // migration commits
	if err := c.RemoveVM(v.ID()); err != nil {
		t.Fatalf("removal after migration failed: %v", err)
	}
}

func TestHostConfigZeroValue(t *testing.T) {
	// Regression guard: lifecycle tests rely on 16-core/64GB hosts from
	// newTestCluster; make the assumption explicit.
	eng, c := newTestCluster(t, 1)
	h, _ := c.Host(1)
	if h.Cores() != 16 || h.MemoryGB() != 64 {
		t.Fatalf("test hosts changed: %v", h)
	}
	_ = eng
	_ = host.Config{}
}
