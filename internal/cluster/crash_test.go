package cluster

import (
	"math"
	"testing"
	"time"

	"agilepower/internal/host"
	"agilepower/internal/sim"
	"agilepower/internal/vm"
)

func TestCrashHostFreezesVMsAndRepairs(t *testing.T) {
	eng, c := newTestCluster(t, 2)
	v := addVM(t, c, 1, 8)
	c.Start()
	eng.RunUntil(sim.Time(time.Hour))

	repair := 30 * time.Minute
	if err := c.CrashHost(1, repair); err != nil {
		t.Fatal(err)
	}
	h, _ := c.Host(1)
	if h.Available() || !h.Machine().Crashed() {
		t.Fatalf("crashed host available=%v crashed=%v", h.Available(), h.Machine().Crashed())
	}
	// The VM is frozen in place, not evicted — and the invariant checker
	// must accept residents on a crashed host.
	if h.NumVMs() != 1 {
		t.Fatalf("crashed host holds %d VMs, want 1", h.NumVMs())
	}
	if err := c.CheckInvariants(); err != nil {
		t.Fatalf("invariants reject crashed host with residents: %v", err)
	}
	// A second crash on the downed host is rejected.
	if err := c.CrashHost(1, repair); err == nil {
		t.Fatal("crash accepted on unavailable host")
	}

	eng.RunUntil(sim.Time(time.Hour + 30*time.Minute))
	c.Flush()
	if !h.Available() || h.Machine().Crashed() {
		t.Fatalf("repaired host available=%v crashed=%v", h.Available(), h.Machine().Crashed())
	}
	// Exactly one VM stranded for exactly the repair window.
	if got := c.StrandedVMSeconds(); math.Abs(got-repair.Seconds()) > 1e-6 {
		t.Fatalf("StrandedVMSeconds = %v, want %v", got, repair.Seconds())
	}
	// The frozen VM delivered nothing during the outage.
	sla, _ := c.SLA(v.ID())
	if sla.UnmetCoreSeconds() < 8*repair.Seconds()-1e-6 {
		t.Fatalf("unmet core-seconds = %v, want at least %v",
			sla.UnmetCoreSeconds(), 8*repair.Seconds())
	}
	sf, wf, crashes := c.TransitionFaultStats()
	if sf != 0 || wf != 0 || crashes != 1 {
		t.Fatalf("fault stats = %d/%d/%d, want 0/0/1", sf, wf, crashes)
	}
}

func TestCrashAbortsMigrationAndReleasesReservation(t *testing.T) {
	eng, c := newTestCluster(t, 2)
	v := addVM(t, c, 1, 4)
	c.Start()

	var gotVM, gotSrc, gotDst int
	c.OnMigrationFailed(func(vid vm.ID, src, dst host.ID) {
		gotVM, gotSrc, gotDst = int(vid), int(src), int(dst)
	})
	if err := c.StartMigration(v.ID(), 2); err != nil {
		t.Fatal(err)
	}
	h2, _ := c.Host(2)
	if h2.Empty() {
		t.Fatal("destination holds no reservation during migration")
	}
	// Crashing the source aborts the in-flight move and releases the
	// destination's memory reservation.
	if err := c.CrashHost(1, 10*time.Minute); err != nil {
		t.Fatal(err)
	}
	if c.Migrating(v.ID()) {
		t.Fatal("migration still in flight after source crash")
	}
	if !h2.Empty() {
		t.Fatal("destination reservation not released on abort")
	}
	if gotVM != int(v.ID()) || gotSrc != 1 || gotDst != 2 {
		t.Fatalf("OnMigrationFailed got vm=%d src=%d dst=%d", gotVM, gotSrc, gotDst)
	}
	if st := c.Migrations().Stats(); st.Aborted != 1 || st.Completed != 0 {
		t.Fatalf("migration stats = %+v", st)
	}
	// The VM never left its source.
	if hid, ok := c.Placement(v.ID()); !ok || hid != 1 {
		t.Fatalf("placement = %v/%v, want host 1", hid, ok)
	}
	// After repair the same move succeeds.
	eng.RunUntil(eng.Now() + sim.Time(10*time.Minute))
	if err := c.StartMigration(v.ID(), 2); err != nil {
		t.Fatal(err)
	}
	eng.RunUntil(eng.Now() + sim.Time(time.Hour))
	if hid, _ := c.Placement(v.ID()); hid != 2 {
		t.Fatalf("retried migration did not land: placement %v", hid)
	}
}

func TestCrashHostUnknown(t *testing.T) {
	_, c := newTestCluster(t, 1)
	if err := c.CrashHost(99, time.Minute); err == nil {
		t.Fatal("crash accepted for unknown host")
	}
}
