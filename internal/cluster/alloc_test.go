package cluster

import (
	"testing"
	"time"

	"agilepower/internal/host"
	"agilepower/internal/sim"
	"agilepower/internal/vm"
	"agilepower/internal/workload"
)

// TestEvaluateSteadyStateAllocFree is the allocation regression gate
// for the simulator's hot path: once the cluster is built and the
// telemetry series are preallocated (Horizon), a steady-state
// evaluation tick must not touch the heap. The budget is zero — any
// regression (a per-tick map, a forgotten scratch buffer, a growing
// slice) fails the test outright.
func TestEvaluateSteadyStateAllocFree(t *testing.T) {
	eng := sim.NewEngine(1)
	c, err := New(eng, Config{Horizon: 30 * 24 * time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	for h := 0; h < 16; h++ {
		if _, err := c.AddHost(host.Config{Cores: 16, MemoryGB: 256}); err != nil {
			t.Fatal(err)
		}
	}
	rng := sim.NewRNG(1)
	for v := 0; v < 80; v++ {
		tr := workload.Diurnal(rng.Fork(), workload.DiurnalSpec{BaseCores: 0.4, PeakCores: 3})
		if _, err := c.AddVM(vm.Config{VCPUs: 4, MemoryGB: 8, Trace: tr}, host.ID(v%16+1)); err != nil {
			t.Fatal(err)
		}
	}
	// Prime all scratch buffers and close the first interval, then
	// measure ticks that advance time so the SLA recording path (the
	// dt > 0 branch) is exercised too. The cluster is deliberately not
	// Started: the clock is advanced manually so each measured run is
	// exactly one evaluation.
	now := eng.Now()
	c.evaluate()
	now += sim.Time(time.Minute)
	eng.RunUntil(now)
	c.evaluate()

	avg := testing.AllocsPerRun(200, func() {
		now += sim.Time(time.Minute)
		eng.RunUntil(now) // empty queue: advances the clock only
		c.evaluate()
	})
	if avg != 0 {
		t.Fatalf("steady-state evaluate allocates %.2f times per tick, want 0", avg)
	}
}

// TestEvaluateAllocFreeWithMigrationOverhead covers the evaluate path
// while a migration is in flight (CPU overhead lookups active on both
// ends), which must stay allocation-free as well.
func TestEvaluateAllocFreeWithMigrationOverhead(t *testing.T) {
	eng := sim.NewEngine(1)
	c, err := New(eng, Config{Horizon: 30 * 24 * time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	for h := 0; h < 2; h++ {
		if _, err := c.AddHost(host.Config{Cores: 16, MemoryGB: 256}); err != nil {
			t.Fatal(err)
		}
	}
	for v := 0; v < 8; v++ {
		if _, err := c.AddVM(vm.Config{VCPUs: 4, MemoryGB: 32, Trace: workload.Constant(1)}, 1); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.StartMigration(1, 2); err != nil {
		t.Fatal(err)
	}
	c.evaluate()
	// Do not run the engine: the migration completion event must stay
	// queued so the overhead path remains active.
	avg := testing.AllocsPerRun(50, func() {
		c.evaluate()
	})
	if avg != 0 {
		t.Fatalf("evaluate with migration overhead allocates %.2f times per tick, want 0", avg)
	}
}
