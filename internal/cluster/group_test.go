package cluster

import (
	"testing"
	"time"

	"agilepower/internal/host"
	"agilepower/internal/vm"
	"agilepower/internal/workload"
)

func groupVM(t *testing.T, c *Cluster, on host.ID, group string) *vm.VM {
	t.Helper()
	v, err := c.AddVM(vm.Config{
		VCPUs: 2, MemoryGB: 4, Trace: workload.Constant(0.5), Group: group,
	}, on)
	if err != nil {
		t.Fatal(err)
	}
	return v
}

func TestGroupConflictResident(t *testing.T) {
	_, c := newTestCluster(t, 3)
	v1 := groupVM(t, c, 1, "db")
	c.Start()

	if !c.GroupConflict(1, "db", 99) {
		t.Fatal("resident member not detected")
	}
	if c.GroupConflict(2, "db", 99) {
		t.Fatal("conflict on empty host")
	}
	if c.GroupConflict(1, "", 99) {
		t.Fatal("empty group conflicts")
	}
	// The member itself is excluded.
	if c.GroupConflict(1, "db", v1.ID()) {
		t.Fatal("self-conflict")
	}
	if c.GroupConflict(99, "db", 0) {
		t.Fatal("unknown host conflicts")
	}
}

func TestGroupConflictInflightMigration(t *testing.T) {
	eng, c := newTestCluster(t, 3)
	v1 := groupVM(t, c, 1, "db")
	c.Start()
	if err := c.StartMigration(v1.ID(), 2); err != nil {
		t.Fatal(err)
	}
	// Host 2 will receive a "db" member: it already conflicts.
	if !c.GroupConflict(2, "db", 99) {
		t.Fatal("inbound migration member not detected")
	}
	eng.RunUntil(5 * time.Minute)
	if !c.GroupConflict(2, "db", 99) {
		t.Fatal("landed member not detected")
	}
	if c.GroupConflict(1, "db", 99) {
		t.Fatal("source still conflicts after the move")
	}
}

func TestGroupRejectionsAtClusterBoundary(t *testing.T) {
	_, c := newTestCluster(t, 2)
	groupVM(t, c, 1, "db")
	c.Start()
	// Second member on the same host via AddVM.
	if _, err := c.AddVM(vm.Config{
		VCPUs: 2, MemoryGB: 4, Trace: workload.Constant(0.5), Group: "db",
	}, 1); err == nil {
		t.Fatal("AddVM co-located a group")
	}
	// Via PlaceVM.
	p, err := c.AddPendingVM(vm.Config{
		VCPUs: 2, MemoryGB: 4, Trace: workload.Constant(0.5), Group: "db",
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.PlaceVM(p.ID(), 1); err == nil {
		t.Fatal("PlaceVM co-located a group")
	}
	if err := c.PlaceVM(p.ID(), 2); err != nil {
		t.Fatalf("conflict-free placement rejected: %v", err)
	}
	// Via migration.
	v3 := groupVM(t, c, 1, "db2")
	_ = v3
	if err := c.StartMigration(p.ID(), 1); err == nil {
		t.Fatal("migration would co-locate a group")
	}
}

func TestClusterAccessors(t *testing.T) {
	eng, c := newTestCluster(t, 1)
	if c.Engine() != eng {
		t.Fatal("Engine accessor wrong")
	}
	if c.EvalStep() != time.Minute {
		t.Fatalf("EvalStep = %v", c.EvalStep())
	}
	if c.Events() == nil {
		t.Fatal("Events nil")
	}
	if c.ResumeFailures() != 0 {
		t.Fatal("resume failures nonzero")
	}
	c.Start()
	d, del := c.LastEvaluation()
	if d != 0 || del != 0 {
		t.Fatalf("LastEvaluation = %v/%v on idle cluster", d, del)
	}
	addVM(t, c, 1, 2)
	eng.RunUntil(2 * time.Minute)
	d, del = c.LastEvaluation()
	if d != 2 || del != 2 {
		t.Fatalf("LastEvaluation = %v/%v, want 2/2", d, del)
	}
}
