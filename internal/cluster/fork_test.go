package cluster

import (
	"testing"
	"time"

	"agilepower/internal/host"
	"agilepower/internal/sim"
	"agilepower/internal/vm"
	"agilepower/internal/workload"
)

// buildPristine constructs a never-started cluster with a populated
// fleet, the shape every fork test starts from.
func buildPristine(t testing.TB, cfg Config, hosts, vms int) (*sim.Engine, *Cluster) {
	t.Helper()
	eng := sim.NewEngine(1)
	c, err := New(eng, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for h := 0; h < hosts; h++ {
		if _, err := c.AddHost(host.Config{Cores: 16, MemoryGB: 256}); err != nil {
			t.Fatal(err)
		}
	}
	rng := sim.NewRNG(1)
	for v := 0; v < vms; v++ {
		tr := workload.Diurnal(rng.Fork(), workload.DiurnalSpec{BaseCores: 0.4, PeakCores: 3})
		if _, err := c.AddVM(vm.Config{VCPUs: 4, MemoryGB: 8, Trace: tr}, host.ID(v%hosts+1)); err != nil {
			t.Fatal(err)
		}
	}
	return eng, c
}

// TestForkedEvaluateSteadyStateAllocFree extends the allocation gate to
// forked worlds: a cluster stamped out by Fork must reach the same
// steady state as one built cold — preallocated series, primed scratch
// buffers — and its evaluation tick must not touch the heap. A fork
// that shares a growable buffer with its source, or skimps on
// preallocation, fails here.
func TestForkedEvaluateSteadyStateAllocFree(t *testing.T) {
	_, src := buildPristine(t, Config{Horizon: 30 * 24 * time.Hour}, 16, 80)
	eng := sim.NewEngine(2)
	c, err := src.Fork(eng)
	if err != nil {
		t.Fatal(err)
	}
	// Prime scratch and close the first interval exactly as the cold
	// alloc gate does, then measure clock-advancing ticks.
	now := eng.Now()
	c.evaluate()
	now += sim.Time(time.Minute)
	eng.RunUntil(now)
	c.evaluate()

	avg := testing.AllocsPerRun(200, func() {
		now += sim.Time(time.Minute)
		eng.RunUntil(now)
		c.evaluate()
	})
	if avg != 0 {
		t.Fatalf("forked steady-state evaluate allocates %.2f times per tick, want 0", avg)
	}
}

// TestForkIsolatesMutableState mutates a fork and its source in
// opposite directions and checks neither sees the other's writes — the
// flat-copy boundaries (placements, residents, SLA trackers, event log)
// must all be deep enough.
func TestForkIsolatesMutableState(t *testing.T) {
	_, src := buildPristine(t, Config{}, 4, 12)
	fork, err := src.Fork(sim.NewEngine(2))
	if err != nil {
		t.Fatal(err)
	}
	srcEvents, forkEvents := src.Events().Len(), fork.Events().Len()
	if srcEvents != forkEvents {
		t.Fatalf("construction logs differ: %d vs %d", srcEvents, forkEvents)
	}
	// Remove a VM from the fork only; add a VM to the source only.
	if err := fork.RemoveVM(1); err != nil {
		t.Fatal(err)
	}
	if _, err := src.AddVM(vm.Config{VCPUs: 2, MemoryGB: 4, Trace: workload.Constant(1)}, 2); err != nil {
		t.Fatal(err)
	}
	if _, ok := src.VM(1); !ok {
		t.Fatal("source lost vm 1 after fork removed it")
	}
	if _, ok := fork.VM(1); ok {
		t.Fatal("fork still holds vm 1 after removal")
	}
	if got := len(src.VMs()); got != 12+1 {
		t.Fatalf("source holds %d VMs, want 13", got)
	}
	if got := len(fork.VMs()); got != 12-1 {
		t.Fatalf("fork holds %d VMs, want 11", got)
	}
	lastSrc := src.Events().All()[src.Events().Len()-1]
	lastFork := fork.Events().All()[fork.Events().Len()-1]
	if lastSrc == lastFork {
		t.Fatalf("event logs still shared after divergent mutations: both end with %v", lastSrc)
	}
	if err := src.CheckInvariants(); err != nil {
		t.Fatalf("source invariants: %v", err)
	}
	if err := fork.CheckInvariants(); err != nil {
		t.Fatalf("fork invariants: %v", err)
	}
}

// TestForkGuards pins the preconditions: forking is only defined for a
// pristine, never-started cluster on an engine at the same clock.
func TestForkGuards(t *testing.T) {
	t.Run("started", func(t *testing.T) {
		_, c := buildPristine(t, Config{}, 2, 4)
		c.Start()
		if _, err := c.Fork(sim.NewEngine(2)); err == nil {
			t.Fatal("fork of started cluster succeeded")
		}
	})
	t.Run("evaluated", func(t *testing.T) {
		_, c := buildPristine(t, Config{}, 2, 4)
		c.evaluate()
		if _, err := c.Fork(sim.NewEngine(2)); err == nil {
			t.Fatal("fork after an evaluation tick succeeded")
		}
	})
	t.Run("clock skew", func(t *testing.T) {
		_, c := buildPristine(t, Config{}, 2, 4)
		eng := sim.NewEngine(2)
		eng.RunUntil(sim.Time(time.Second))
		if _, err := c.Fork(eng); err == nil {
			t.Fatal("fork onto an advanced engine succeeded")
		}
	})
}
