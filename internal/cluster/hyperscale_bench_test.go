package cluster

import (
	"testing"
	"time"

	"agilepower/internal/host"
	"agilepower/internal/sim"
	"agilepower/internal/vm"
	"agilepower/internal/workload"
)

// buildHyperscaleCluster assembles the quiescent-majority fixture the
// hyperscale benchmarks measure: 16,384 hosts carrying 131,072 VMs,
// drawing demand from a small shared trace pool. The first eighth of
// the fleet holds the diurnal VMs (15-minute sampling, so those hosts
// see a demand edge once per fifteen 1-minute ticks); the rest hold
// constant-demand VMs and never need re-evaluation after priming —
// the >80%-quiescent population shape of a consolidated datacenter
// trough, matching the hyperscale experiment's trough-heavy variant.
func buildHyperscaleCluster(b *testing.B, delta bool) (*sim.Engine, *Cluster) {
	b.Helper()
	const (
		hosts     = 16384
		perHost   = 8
		churnCut  = hosts / 8 // hosts 1..churnCut get diurnal VMs
		poolSize  = 256
		traceIvl  = 15 * time.Minute
		horizonHr = 30 * 24
	)
	eng := sim.NewEngine(1)
	c, err := New(eng, Config{Horizon: horizonHr * time.Hour, Delta: delta})
	if err != nil {
		b.Fatal(err)
	}
	for h := 0; h < hosts; h++ {
		if _, err := c.AddHost(host.Config{Cores: 16, MemoryGB: 256}); err != nil {
			b.Fatal(err)
		}
	}
	rng := sim.NewRNG(1)
	pool := make([]*workload.Trace, poolSize)
	for i := range pool {
		pool[i] = workload.Diurnal(rng.Fork(), workload.DiurnalSpec{
			Interval:  traceIvl,
			BaseCores: 0.1, PeakCores: 0.8, NoiseFrac: 0.05,
			PhaseJitter: 90 * time.Minute,
		})
	}
	flat := make([]*workload.Trace, 8)
	for i := range flat {
		flat[i] = workload.Constant(0.1 + 0.05*float64(i))
	}
	n := 0
	for h := 1; h <= hosts; h++ {
		for k := 0; k < perHost; k++ {
			tr := flat[n%len(flat)]
			if h <= churnCut {
				tr = pool[n%len(pool)]
			}
			if _, err := c.AddVM(vm.Config{VCPUs: 2, MemoryGB: 4, Trace: tr}, host.ID(h)); err != nil {
				b.Fatal(err)
			}
			n++
		}
	}
	return eng, c
}

// benchHyperscaleTick measures steady-state evaluation ticks with the
// clock advancing one minute per tick, the cadence a real run has —
// so in delta mode the due-heaps actually fire on the 15-minute
// demand edges instead of the fixture sitting frozen in time.
func benchHyperscaleTick(b *testing.B, delta bool) {
	eng, c := buildHyperscaleCluster(b, delta)
	c.startEval()
	defer c.Close()
	now := eng.Now()
	c.evaluate() // prime partials, deadlines and heaps
	// Warm through one full 15-minute trace period so every lazy growth
	// path (telemetry series, energy segments, due-heap fires) has
	// happened before the timer starts; what remains is steady state.
	for i := 0; i < 16; i++ {
		now += sim.Time(time.Minute)
		eng.RunUntil(now)
		c.evaluate()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		now += sim.Time(time.Minute)
		eng.RunUntil(now)
		c.evaluate()
	}
}

// BenchmarkHyperscaleEvaluateFullScan is the pre-delta baseline: every
// tick rescans all 16,384 hosts and re-schedules all 131,072 VMs.
func BenchmarkHyperscaleEvaluateFullScan(b *testing.B) {
	benchHyperscaleTick(b, false)
}

// BenchmarkHyperscaleEvaluateDelta is the same fixture under delta
// evaluation: work per tick is proportional to the fleet's change
// volume (an eighth of the hosts, one tick in fifteen), with
// quiescent hosts' energy integrating analytically. The
// BENCH_hyperscale.json record tracks the ratio against FullScan;
// the acceptance bar is >= 10x on this quiescent-majority fixture.
func BenchmarkHyperscaleEvaluateDelta(b *testing.B) {
	benchHyperscaleTick(b, true)
}
