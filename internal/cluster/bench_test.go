package cluster

import (
	"testing"
	"time"

	"agilepower/internal/host"
	"agilepower/internal/sim"
	"agilepower/internal/vm"
	"agilepower/internal/workload"
)

// BenchmarkSimulatedDay measures substrate throughput: one simulated
// day of an 8-host / 40-VM cluster (no manager) per iteration.
func BenchmarkSimulatedDay(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		eng := sim.NewEngine(1)
		c, err := New(eng, Config{})
		if err != nil {
			b.Fatal(err)
		}
		for h := 0; h < 8; h++ {
			if _, err := c.AddHost(host.Config{Cores: 16, MemoryGB: 256}); err != nil {
				b.Fatal(err)
			}
		}
		rng := sim.NewRNG(1)
		for v := 0; v < 40; v++ {
			tr := workload.Diurnal(rng.Fork(), workload.DiurnalSpec{BaseCores: 0.4, PeakCores: 3})
			if _, err := c.AddVM(vm.Config{VCPUs: 4, MemoryGB: 8, Trace: tr}, host.ID(v%8+1)); err != nil {
				b.Fatal(err)
			}
		}
		c.Start()
		eng.RunUntil(24 * time.Hour)
		c.Flush()
		if c.TotalEnergy() <= 0 {
			b.Fatal("no energy accounted")
		}
	}
}

// BenchmarkClusterEvaluate measures one evaluation pass over a
// 32-host / 160-VM cluster — the simulator's innermost hot path.
func BenchmarkClusterEvaluate(b *testing.B) {
	eng := sim.NewEngine(1)
	c, err := New(eng, Config{})
	if err != nil {
		b.Fatal(err)
	}
	for h := 0; h < 32; h++ {
		if _, err := c.AddHost(host.Config{Cores: 16, MemoryGB: 256}); err != nil {
			b.Fatal(err)
		}
	}
	for v := 0; v < 160; v++ {
		if _, err := c.AddVM(vm.Config{VCPUs: 4, MemoryGB: 8, Trace: workload.Constant(1)}, host.ID(v%32+1)); err != nil {
			b.Fatal(err)
		}
	}
	c.Start()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.evaluate()
	}
}
