package cluster

import (
	"fmt"
	"testing"
	"time"

	"agilepower/internal/host"
	"agilepower/internal/sim"
	"agilepower/internal/vm"
	"agilepower/internal/workload"
)

// BenchmarkSimulatedDay measures substrate throughput: one simulated
// day of an 8-host / 40-VM cluster (no manager) per iteration.
func BenchmarkSimulatedDay(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		eng := sim.NewEngine(1)
		c, err := New(eng, Config{})
		if err != nil {
			b.Fatal(err)
		}
		for h := 0; h < 8; h++ {
			if _, err := c.AddHost(host.Config{Cores: 16, MemoryGB: 256}); err != nil {
				b.Fatal(err)
			}
		}
		rng := sim.NewRNG(1)
		for v := 0; v < 40; v++ {
			tr := workload.Diurnal(rng.Fork(), workload.DiurnalSpec{BaseCores: 0.4, PeakCores: 3})
			if _, err := c.AddVM(vm.Config{VCPUs: 4, MemoryGB: 8, Trace: tr}, host.ID(v%8+1)); err != nil {
				b.Fatal(err)
			}
		}
		c.Start()
		eng.RunUntil(24 * time.Hour)
		c.Flush()
		if c.TotalEnergy() <= 0 {
			b.Fatal("no energy accounted")
		}
	}
}

// buildScaleCluster assembles the datacenter-scale fixture shared by
// the scale benchmarks: 2,048 heterogeneous hosts and 16,384 diurnal
// VMs, with the evaluation tick sharded as requested.
func buildScaleCluster(b *testing.B, shards, workers int) (*sim.Engine, *Cluster) {
	b.Helper()
	eng := sim.NewEngine(1)
	c, err := New(eng, Config{Horizon: 24 * time.Hour, Shards: shards, EvalWorkers: workers})
	if err != nil {
		b.Fatal(err)
	}
	for h := 0; h < 2048; h++ {
		cfg := host.Config{Cores: 16, MemoryGB: 256}
		if h%4 == 3 {
			cfg = host.Config{Cores: 32, MemoryGB: 512}
		}
		if _, err := c.AddHost(cfg); err != nil {
			b.Fatal(err)
		}
	}
	rng := sim.NewRNG(1)
	for v := 0; v < 16384; v++ {
		tr := workload.Diurnal(rng.Fork(), workload.DiurnalSpec{BaseCores: 0.4, PeakCores: 3})
		if _, err := c.AddVM(vm.Config{VCPUs: 4, MemoryGB: 8, Trace: tr}, host.ID(v%2048+1)); err != nil {
			b.Fatal(err)
		}
	}
	return eng, c
}

// BenchmarkScaleEvaluate measures one evaluation pass over the
// 2,048-host / 16,384-VM fixture at several shard counts. shards=1 is
// the serial baseline the BENCH_scale.json record compares against.
func BenchmarkScaleEvaluate(b *testing.B) {
	for _, shards := range []int{1, 4, 8} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			_, c := buildScaleCluster(b, shards, 0)
			c.Start()
			defer c.Close()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				c.evaluate()
			}
		})
	}
}

// BenchmarkScaleDay measures a full simulated day of the same fixture
// (no manager): 1,440 evaluation ticks plus trace evaluation for every
// VM — the workload the scale experiment's throughput numbers
// describe.
func BenchmarkScaleDay(b *testing.B) {
	for _, shards := range []int{1, 4} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				eng, c := buildScaleCluster(b, shards, 0)
				c.Start()
				eng.RunUntil(24 * time.Hour)
				c.Flush()
				c.Close()
				if c.TotalEnergy() <= 0 {
					b.Fatal("no energy accounted")
				}
			}
		})
	}
}

// BenchmarkClusterEvaluate measures one evaluation pass over a
// 32-host / 160-VM cluster — the simulator's innermost hot path.
func BenchmarkClusterEvaluate(b *testing.B) {
	eng := sim.NewEngine(1)
	c, err := New(eng, Config{})
	if err != nil {
		b.Fatal(err)
	}
	for h := 0; h < 32; h++ {
		if _, err := c.AddHost(host.Config{Cores: 16, MemoryGB: 256}); err != nil {
			b.Fatal(err)
		}
	}
	for v := 0; v < 160; v++ {
		if _, err := c.AddVM(vm.Config{VCPUs: 4, MemoryGB: 8, Trace: workload.Constant(1)}, host.ID(v%32+1)); err != nil {
			b.Fatal(err)
		}
	}
	c.Start()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.evaluate()
	}
}
