package cluster

import (
	"fmt"
	"testing"
	"time"

	"agilepower/internal/host"
	"agilepower/internal/sim"
	"agilepower/internal/vm"
	"agilepower/internal/workload"
)

// sameClusterResults compares every observable accounting output of
// two finished clusters bit for bit.
func sameClusterResults(t *testing.T, ref, got *Cluster) {
	t.Helper()
	sameSeries(t, "power", ref.PowerSeries(), got.PowerSeries())
	sameSeries(t, "demand", ref.DemandSeries(), got.DemandSeries())
	sameSeries(t, "delivered", ref.DeliveredSeries(), got.DeliveredSeries())
	sameSeries(t, "active", ref.ActiveHostSeries(), got.ActiveHostSeries())
	if ra, ga := *ref.AggregateSLA(), *got.AggregateSLA(); ra != ga {
		t.Fatalf("aggregate SLA differs: %+v vs %+v", ra, ga)
	}
	if re, ge := ref.TotalEnergy(), got.TotalEnergy(); re != ge {
		t.Fatalf("energy differs: %v vs %v", re, ge)
	}
	if rs, gs := ref.StrandedVMSeconds(), got.StrandedVMSeconds(); rs != gs {
		t.Fatalf("stranded VM·s differs: %v vs %v", rs, gs)
	}
}

// TestDeltaEvaluateBitIdentical is the determinism core of delta
// evaluation: the eventful half-day scenario (migration, crash,
// arrival, departure) must produce bit-identical telemetry, SLA,
// energy and stranded accounting with delta on, for every shard and
// worker count, compared to the serial full-scan reference.
func TestDeltaEvaluateBitIdentical(t *testing.T) {
	ref := runEvalScenario(t, 0, 0, false)
	for _, shards := range []int{0, 1, 2, 4} {
		for _, workers := range []int{1, 3} {
			t.Run(fmt.Sprintf("delta/shards=%d/workers=%d", shards, workers), func(t *testing.T) {
				got := runEvalScenario(t, shards, workers, true)
				sameClusterResults(t, ref, got)
			})
		}
	}
}

// buildQuiescentCluster assembles a fleet where most demand is
// plateaued: constant traces plus coarse 15-minute diurnals, so a
// 1-minute tick sees an edge on at most one tick in fifteen.
func buildQuiescentCluster(t testing.TB, eng *sim.Engine, cfg Config, hosts, vms int) *Cluster {
	t.Helper()
	c, err := New(eng, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for h := 0; h < hosts; h++ {
		if _, err := c.AddHost(host.Config{Cores: 16, MemoryGB: 256}); err != nil {
			t.Fatal(err)
		}
	}
	rng := sim.NewRNG(3)
	for v := 0; v < vms; v++ {
		var tr *workload.Trace
		if v%2 == 0 {
			tr = workload.Constant(0.2 + 0.1*float64(v%4))
		} else {
			tr = workload.Diurnal(rng.Fork(), workload.DiurnalSpec{
				Interval:  15 * time.Minute,
				BaseCores: 0.1, PeakCores: 0.8, NoiseFrac: 0.05,
				PhaseJitter: 90 * time.Minute,
			})
		}
		if _, err := c.AddVM(vm.Config{VCPUs: 2, MemoryGB: 4, Trace: tr}, host.ID(v%hosts+1)); err != nil {
			t.Fatal(err)
		}
	}
	return c
}

// TestDeltaSkipsQuiescentHosts pins the point of the machinery: on a
// plateau-heavy fleet the delta tick must evaluate only a small
// fraction of host slots, while producing the same bytes as the full
// scan. Without this gate the delta path could silently degenerate
// into a full scan and every perf claim would rot.
func TestDeltaSkipsQuiescentHosts(t *testing.T) {
	run := func(delta bool) *Cluster {
		eng := sim.NewEngine(1)
		c := buildQuiescentCluster(t, eng, Config{Horizon: 6 * time.Hour, Delta: delta}, 16, 96)
		c.Start()
		eng.RunUntil(6 * time.Hour)
		c.Flush()
		c.Close()
		return c
	}
	full := run(false)
	delta := run(true)
	sameClusterResults(t, full, delta)

	fTicks, fEvals := full.EvalCounts()
	dTicks, dEvals := delta.EvalCounts()
	if fTicks != dTicks {
		t.Fatalf("tick counts differ: full %d vs delta %d", fTicks, dTicks)
	}
	if fEvals < fTicks*16 {
		t.Fatalf("full mode evaluated %d host-slots over %d ticks, want >= %d", fEvals, fTicks, fTicks*16)
	}
	// The fleet's demand edges land on 15-minute boundaries while ticks
	// are 1 minute apart, so delta should skip the vast majority of
	// host-slots. Half the bound the workload implies keeps the gate
	// robust to placement details.
	if dEvals*2 > fEvals {
		t.Fatalf("delta evaluated %d of %d host-slots — not skipping quiescent hosts", dEvals, fEvals)
	}
}

// TestFlushAfterCloseDeltaKeepsTailAccounting is the regression test
// for the Flush/Close ordering bug class: a Flush issued after Close
// must force a full (non-delta) evaluation pass so the final report
// includes the analytically integrated tail — energy and SLA accrued
// since each quiescent host's last re-evaluation. Both orderings must
// produce the full-scan reference's exact bytes.
func TestFlushAfterCloseDeltaKeepsTailAccounting(t *testing.T) {
	run := func(delta bool, closeFirst bool) *Cluster {
		eng := sim.NewEngine(1)
		c := buildQuiescentCluster(t, eng, Config{Horizon: 6 * time.Hour, Shards: 2, EvalWorkers: 2, Delta: delta}, 16, 96)
		c.Start()
		// Stop between ticks so open accounting runs and analytic energy
		// segments are live when the books close.
		eng.RunUntil(4*time.Hour + 30*time.Second)
		if closeFirst {
			c.Close()
			c.Flush()
		} else {
			c.Flush()
			c.Close()
		}
		return c
	}
	ref := run(false, false)
	sameClusterResults(t, ref, run(true, false))
	sameClusterResults(t, ref, run(true, true))
	sameClusterResults(t, ref, run(false, true))
}

// TestDeltaSteadyStateAllocFree extends the allocation gate to the
// delta machinery: dirty-queue drains, due-heap updates and run
// coalescing must all ride preallocated storage. Demand edges fire
// every 15 minutes, so the measured window includes ticks that drain
// the due-heaps as well as ticks that skip everything.
func TestDeltaSteadyStateAllocFree(t *testing.T) {
	eng := sim.NewEngine(1)
	c := buildQuiescentCluster(t, eng,
		Config{Horizon: 30 * 24 * time.Hour, Shards: 4, EvalWorkers: 2, Delta: true}, 16, 96)
	c.startEval()
	now := eng.Now()
	c.evaluate()
	now += sim.Time(time.Minute)
	eng.RunUntil(now)
	c.evaluate()

	avg := testing.AllocsPerRun(200, func() {
		now += sim.Time(time.Minute)
		eng.RunUntil(now)
		c.evaluate()
	})
	if avg != 0 {
		t.Fatalf("delta steady-state evaluate allocates %.2f times per tick, want 0", avg)
	}
	c.Close()
}

// TestEvalCountsCoverAllPaths sanity-checks the diagnostics counters:
// full mode accounts every host every tick, and the direct (pre-Start
// / post-Close) path is counted too.
func TestEvalCountsCoverAllPaths(t *testing.T) {
	eng := sim.NewEngine(1)
	c := buildQuiescentCluster(t, eng, Config{Horizon: time.Hour}, 4, 8)
	c.Start()
	eng.RunUntil(30 * time.Minute)
	c.Flush()
	c.Close()
	ticks, evals := c.EvalCounts()
	if ticks == 0 {
		t.Fatal("no ticks counted")
	}
	if evals < ticks*4 {
		t.Fatalf("full mode counted %d host evals over %d ticks on 4 hosts, want >= %d", evals, ticks, ticks*4)
	}
}
