package agilepower

import (
	"testing"
	"time"
)

func smallScenario() Scenario {
	return Scenario{
		Name:    "test",
		Hosts:   4,
		VMs:     ConstantFleet(8, 0.5),
		Horizon: 2 * time.Hour,
		Manager: ManagerConfig{Policy: DPMS3},
	}
}

func TestScenarioValidate(t *testing.T) {
	s := smallScenario()
	if err := s.Validate(); err != nil {
		t.Fatalf("valid scenario rejected: %v", err)
	}
	s.Hosts = 0
	if err := s.Validate(); err == nil {
		t.Error("accepted zero hosts")
	}
	s = smallScenario()
	s.VMs = nil
	if err := s.Validate(); err == nil {
		t.Error("accepted empty fleet")
	}
	s = smallScenario()
	s.VMs = []VMSpec{{Name: "x", VCPUs: 1, MemoryGB: 1}}
	if err := s.Validate(); err == nil {
		t.Error("accepted VM without trace")
	}
}

func TestRunProducesFullResult(t *testing.T) {
	res, err := smallScenario().Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Policy != "dpm-s3" || res.Scenario != "test" {
		t.Fatalf("labels: %q/%q", res.Policy, res.Scenario)
	}
	if res.Energy <= 0 || res.MeanPowerW <= 0 || res.PeakPowerW <= 0 {
		t.Fatalf("energy metrics missing: %+v", res)
	}
	if res.Satisfaction <= 0 || res.Satisfaction > 1 {
		t.Fatalf("satisfaction = %v", res.Satisfaction)
	}
	if res.Power.Len() == 0 || res.Demand.Len() == 0 || res.ActiveHosts.Len() == 0 {
		t.Fatal("series not recorded")
	}
	if res.EnergyKWh() <= 0 {
		t.Fatal("kWh conversion failed")
	}
	// Light load consolidates: sleeps happen.
	if res.Sleeps == 0 {
		t.Fatal("no sleep actions under light load")
	}
}

func TestRunDeterministic(t *testing.T) {
	a, err := smallScenario().Run()
	if err != nil {
		t.Fatal(err)
	}
	b, err := smallScenario().Run()
	if err != nil {
		t.Fatal(err)
	}
	if a.Energy != b.Energy || a.Satisfaction != b.Satisfaction ||
		a.Migrations.Completed != b.Migrations.Completed {
		t.Fatalf("same scenario diverged: %v vs %v", a.Energy, b.Energy)
	}
}

func TestRunPoliciesOrderAndLabels(t *testing.T) {
	s := smallScenario()
	s.Horizon = time.Hour
	results, err := s.RunPolicies(Policies())
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 4 {
		t.Fatalf("results = %d", len(results))
	}
	names := []string{"static", "nopm-drm", "dpm-s5", "dpm-s3"}
	for i, r := range results {
		if r.Policy != names[i] {
			t.Fatalf("result %d policy = %q, want %q", i, r.Policy, names[i])
		}
	}
	// DPM beats static on energy under light flat load.
	static, dpmS3 := results[0], results[3]
	if dpmS3.SavingsVs(static) <= 0 {
		t.Fatalf("dpm-s3 saved %v vs static, want positive", dpmS3.SavingsVs(static))
	}
}

func TestOracleBoundsBracketDPM(t *testing.T) {
	s := smallScenario()
	s.Horizon = 4 * time.Hour
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	oracleE, err := res.OracleEnergy()
	if err != nil {
		t.Fatal(err)
	}
	propE, err := res.ProportionalEnergy()
	if err != nil {
		t.Fatal(err)
	}
	if !(propE < oracleE) {
		t.Fatalf("proportional %v should undercut oracle %v", propE, oracleE)
	}
	if !(oracleE < res.Energy) {
		t.Fatalf("oracle %v should undercut the real controller %v", oracleE, res.Energy)
	}
}

func TestFleetBuilders(t *testing.T) {
	if got := len(DiurnalFleet(10, 1)); got != 10 {
		t.Fatalf("diurnal fleet size = %d", got)
	}
	if got := len(SpikyFleet(5, 3, 1)); got != 5 {
		t.Fatalf("spiky fleet size = %d", got)
	}
	if got := len(BatchFleet(4, 1)); got != 4 {
		t.Fatalf("batch fleet size = %d", got)
	}
	mixed := MixedFleet(20, 1)
	if len(mixed) != 20 {
		t.Fatalf("mixed fleet size = %d", len(mixed))
	}
	for _, v := range mixed {
		if v.Trace == nil || v.VCPUs <= 0 || v.MemoryGB <= 0 {
			t.Fatalf("malformed VM spec %+v", v)
		}
	}
	// Determinism.
	a, b := DiurnalFleet(3, 7), DiurnalFleet(3, 7)
	for i := range a {
		if a[i].Trace.At(6*time.Hour) != b[i].Trace.At(6*time.Hour) {
			t.Fatal("fleet builder not deterministic")
		}
	}
}

func TestGeneratorExports(t *testing.T) {
	d := GenerateDiurnal(1, 1, 4, 0.05, time.Hour)
	if d.Duration() != 24*time.Hour {
		t.Fatalf("diurnal duration = %v", d.Duration())
	}
	sp := GenerateSpiky(1, 0.5, 6, 4, 10*time.Minute)
	if sp.Peak() != 6 {
		t.Fatalf("spiky peak = %v", sp.Peak())
	}
	if ConstantTrace(2).At(time.Hour) != 2 {
		t.Fatal("constant trace wrong")
	}
}

func TestDefaultsExposed(t *testing.T) {
	if DefaultProfile() == nil {
		t.Fatal("nil default profile")
	}
	if DefaultMigrationModel().BandwidthGbps <= 0 {
		t.Fatal("bad default migration model")
	}
	if len(Policies()) != 4 {
		t.Fatal("policy set wrong")
	}
}
