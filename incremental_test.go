package agilepower

import (
	"testing"
	"time"
)

// The manager's incremental planning mode is a pure wall-clock knob:
// every result a scenario produces must be identical with it on or
// off. Exercise the claim end to end across the feature matrix —
// churn, fault injection, a lossy control plane, predictive wake,
// DVFS, heterogeneous fleets — comparing full Results field by field
// and event by event.
func TestIncrementalModeMatchesFullScan(t *testing.T) {
	cases := []struct {
		name string
		sc   Scenario
	}{
		{"dpm-s3 mixed churn", Scenario{
			Hosts: 6, VMs: MixedFleet(24, 5), Horizon: 8 * time.Hour, Seed: 5,
			Manager: ManagerConfig{Policy: DPMS3},
			Churn:   &ChurnSpec{ArrivalsPerHour: 3, MeanLifetime: 2 * time.Hour},
		}},
		{"dpm-s5 predictive", Scenario{
			Hosts: 6, VMs: WorkdayFleet(18, 1, 5), Horizon: 12 * time.Hour, Seed: 5,
			Manager: ManagerConfig{Policy: DPMS5, PredictiveWake: true},
		}},
		{"faulted dvfs combo", func() Scenario {
			f := FaultPreset(0.2)
			return Scenario{
				Hosts: 6, VMs: DiurnalFleet(18, 5), Horizon: 8 * time.Hour, Seed: 5,
				Manager: ManagerConfig{Policy: Policy{
					Name: "combo", LoadBalance: true, Consolidate: true,
					PowerManage: true, SleepState: S3, DVFS: true,
				}},
				Faults: &f,
			}
		}()},
		{"lossy ctrlplane", func() Scenario {
			cp := CtrlPreset(50*time.Millisecond, 0.05)
			return Scenario{
				Hosts: 8, VMs: ReplicatedFleet(6, 3, 5), Horizon: 8 * time.Hour, Seed: 5,
				Manager:   ManagerConfig{Policy: DPMS3, PanicShortfall: 0.3},
				CtrlPlane: &cp,
			}
		}()},
		{"hetero resume-failures", func() Scenario {
			p := DefaultProfile()
			p.ResumeFailProb = 0.2
			return Scenario{
				HostClasses: []HostClass{{Count: 3, Cores: 32}, {Count: 4}},
				Profile:     p,
				VMs:         BatchFleet(16, 5),
				Horizon:     8 * time.Hour,
				Seed:        5,
				Manager:     ManagerConfig{Policy: DPMS3},
			}
		}()},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			on := tc.sc
			on.Manager.Incremental = IncrementalOn
			off := tc.sc
			off.Manager.Incremental = IncrementalOff
			a, err := on.Run()
			if err != nil {
				t.Fatal(err)
			}
			b, err := off.Run()
			if err != nil {
				t.Fatal(err)
			}
			if a.Energy != b.Energy {
				t.Fatalf("energy diverged: %v vs %v", a.Energy, b.Energy)
			}
			if a.Satisfaction != b.Satisfaction || a.ViolationFraction != b.ViolationFraction {
				t.Fatalf("SLA diverged")
			}
			if a.Migrations.Completed != b.Migrations.Completed ||
				a.Sleeps != b.Sleeps || a.Wakes != b.Wakes ||
				a.ResumeFailures != b.ResumeFailures ||
				a.Manager.FreqChanges != b.Manager.FreqChanges {
				t.Fatalf("action counts diverged: %+v vs %+v", a.Manager, b.Manager)
			}
			if a.Events.Len() != b.Events.Len() {
				t.Fatalf("event logs diverged: %d vs %d", a.Events.Len(), b.Events.Len())
			}
			for i, ea := range a.Events.All() {
				if ea != b.Events.All()[i] {
					t.Fatalf("event %d diverged: %v vs %v", i, ea, b.Events.All()[i])
				}
			}
		})
	}
}
