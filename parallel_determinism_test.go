package agilepower

import (
	"testing"
	"time"
)

// The parallel runner's contract is that the worker count is invisible
// in the results: every fan-out collects into per-index slots and each
// worker builds its own engine/cluster/fleet, so workers=1 and
// workers=N must agree bit for bit. These tests double as the race
// smoke for RunPolicies/RunReplicated — run them under `go test -race`
// (see Makefile target race) to check the no-shared-mutable-state
// audit holds.

func parallelSmokeScenario() Scenario {
	return Scenario{
		Hosts:   6,
		VMs:     MixedFleet(18, 7),
		Horizon: 4 * time.Hour,
		Seed:    7,
		Manager: ManagerConfig{Policy: DPMS3},
		Churn:   &ChurnSpec{ArrivalsPerHour: 2, MeanLifetime: time.Hour},
	}
}

func sameResult(t *testing.T, label string, a, b *Result) {
	t.Helper()
	if a.Energy != b.Energy {
		t.Fatalf("%s: energy diverged: %v vs %v", label, a.Energy, b.Energy)
	}
	if a.Satisfaction != b.Satisfaction || a.ViolationFraction != b.ViolationFraction {
		t.Fatalf("%s: SLA metrics diverged", label)
	}
	if a.Migrations.Completed != b.Migrations.Completed ||
		a.Sleeps != b.Sleeps || a.Wakes != b.Wakes ||
		a.ResumeFailures != b.ResumeFailures {
		t.Fatalf("%s: action counts diverged", label)
	}
	if a.Events.Len() != b.Events.Len() {
		t.Fatalf("%s: event logs diverged: %d vs %d events", label, a.Events.Len(), b.Events.Len())
	}
	for i, ea := range a.Events.All() {
		if ea != b.Events.All()[i] {
			t.Fatalf("%s: event %d diverged: %v vs %v", label, i, ea, b.Events.All()[i])
		}
	}
}

func TestRunPoliciesWorkersIdentical(t *testing.T) {
	sc := parallelSmokeScenario()
	policies := Policies()
	seq, err := sc.RunPoliciesWorkers(1, policies)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 4, 0} {
		par, err := sc.RunPoliciesWorkers(workers, policies)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if len(par) != len(seq) {
			t.Fatalf("workers=%d: %d results, want %d", workers, len(par), len(seq))
		}
		for i := range seq {
			sameResult(t, policies[i].Name, seq[i], par[i])
		}
	}
}

func TestRunReplicatedWorkersIdentical(t *testing.T) {
	sc := parallelSmokeScenario()
	seeds := Seeds(100, 6)
	seq, err := sc.RunReplicatedWorkers(1, seeds, mixedFleet18)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 4, 0} {
		par, err := sc.RunReplicatedWorkers(workers, seeds, mixedFleet18)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		// Stat is plain floats: the aggregation folds per-seed metrics
		// in seed order, so even the Std must match exactly.
		if par.EnergyKWh != seq.EnergyKWh ||
			par.Satisfaction != seq.Satisfaction ||
			par.ViolationFraction != seq.ViolationFraction ||
			par.Migrations != seq.Migrations ||
			par.PowerActions != seq.PowerActions {
			t.Fatalf("workers=%d: replication stats diverged:\n%+v\nvs\n%+v", workers, par, seq)
		}
		for i := range seq.Runs {
			sameResult(t, "seed run", seq.Runs[i], par.Runs[i])
		}
	}
}

// mixedFleet18 is a top-level func (not a closure) so the test also
// documents the fleet-builder contract: deterministic in its seed,
// callable from any goroutine.
func mixedFleet18(seed uint64) []VMSpec { return MixedFleet(18, seed) }
