package agilepower

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"time"

	"agilepower/internal/script"
)

// ScenarioFile is the declarative JSON form of a Scenario, the format
// `agilepm -config` loads. Fleets are described by builder kind and
// parameters rather than per-VM traces, so files stay small and
// reproducible from their seeds.
//
//	{
//	  "name": "my-day",
//	  "hosts": 32,
//	  "fleets": [
//	    {"kind": "diurnal", "count": 96},
//	    {"kind": "spiky", "count": 40, "spikes": 4},
//	    {"kind": "replicated", "services": 8, "replicas": 3}
//	  ],
//	  "horizonHours": 24,
//	  "policy": "dpm-s3",
//	  "manager": {"periodMinutes": 5, "targetUtil": 0.7, "predictiveWake": true}
//	}
type ScenarioFile struct {
	Name         string  `json:"name,omitempty"`
	Hosts        int     `json:"hosts"`
	HostCores    float64 `json:"hostCores,omitempty"`
	HostMemoryGB float64 `json:"hostMemoryGB,omitempty"`
	// HostClasses optionally builds a heterogeneous fleet.
	HostClasses []HostClassFile `json:"hostClasses,omitempty"`
	// Profile optionally embeds a power calibration (the JSON
	// cmd/calibrate emits).
	Profile *Profile `json:"profile,omitempty"`

	Fleets []FleetFile `json:"fleets"`

	HorizonHours float64      `json:"horizonHours,omitempty"`
	Policy       string       `json:"policy,omitempty"`
	Manager      *ManagerFile `json:"manager,omitempty"`
	Churn        *ChurnFile   `json:"churn,omitempty"`
	// CtrlPlane degrades the management network (CtrlPreset mix).
	CtrlPlane *CtrlPlaneFile `json:"ctrlplane,omitempty"`
	// Faults injects the standard fault mix (FaultPreset rate). Zero
	// rate = dormant (no injector is built).
	Faults *FaultsFile `json:"faults,omitempty"`
	// Events is the timed event script: crashes, drains, power caps,
	// demand surges, fault retunes, control-plane windows.
	Events []EventFile `json:"events,omitempty"`
	// Assert lists predicates the run must satisfy; violations are
	// reported in the Result and drive nonzero CLI exits.
	Assert []AssertFile `json:"assert,omitempty"`
	// Chaos appends named-pattern generated event scripts (applied
	// after Events, in order).
	Chaos []ChaosFile `json:"chaos,omitempty"`
	Seed  uint64      `json:"seed,omitempty"`
	// Shards and EvalWorkers shard the evaluation tick inside the
	// simulation (wall-clock only; results are byte-identical for every
	// value — see Scenario.Shards).
	Shards      int `json:"shards,omitempty"`
	EvalWorkers int `json:"evalWorkers,omitempty"`
	// Delta enables event-driven delta evaluation (wall-clock only;
	// results are byte-identical with it on or off — see
	// Scenario.Delta).
	Delta bool `json:"delta,omitempty"`
	// TelemetryCap bounds each recorded time series to this many stored
	// samples (0 = unbounded — see Scenario.TelemetryCap).
	TelemetryCap int `json:"telemetryCap,omitempty"`
}

// HostClassFile mirrors HostClass in JSON.
type HostClassFile struct {
	Count    int     `json:"count"`
	Cores    float64 `json:"cores,omitempty"`
	MemoryGB float64 `json:"memoryGB,omitempty"`
}

// FleetFile selects a fleet builder.
type FleetFile struct {
	// Kind: diurnal, spiky, batch, mixed, workday, flat, replicated.
	Kind  string `json:"kind"`
	Count int    `json:"count,omitempty"`
	// Demand is the per-VM cores for flat fleets (default 1).
	Demand float64 `json:"demand,omitempty"`
	// Spikes per day for spiky fleets (default 4).
	Spikes int `json:"spikes,omitempty"`
	// Days for workday fleets (default 1).
	Days int `json:"days,omitempty"`
	// Services and Replicas for replicated fleets.
	Services int `json:"services,omitempty"`
	Replicas int `json:"replicas,omitempty"`
	// Seed offsets the scenario seed for this fleet (so two fleets of
	// the same kind differ).
	Seed uint64 `json:"seed,omitempty"`
}

// ManagerFile mirrors the tunable subset of ManagerConfig in JSON.
type ManagerFile struct {
	PeriodMinutes  float64 `json:"periodMinutes,omitempty"`
	TargetUtil     float64 `json:"targetUtil,omitempty"`
	WakeThreshold  float64 `json:"wakeThreshold,omitempty"`
	SpareHosts     int     `json:"spareHosts,omitempty"`
	MinActive      int     `json:"minActive,omitempty"`
	PredictiveWake bool    `json:"predictiveWake,omitempty"`
	PanicShortfall float64 `json:"panicShortfall,omitempty"`
	Forecast       string  `json:"forecast,omitempty"` // last-value, ewma, peak-window
	// Incremental selects the planning mode: "on" (default) maintains
	// planning inputs from per-host deltas, "off" rebuilds them by full
	// scan each control step. Wall-clock only; results are
	// byte-identical either way.
	Incremental string `json:"incremental,omitempty"`
}

// CtrlPlaneFile mirrors the CtrlPreset knobs in JSON: mean one-way
// message delay in milliseconds and per-leg loss probability. Zero
// both = dormant (no plane is built).
type CtrlPlaneFile struct {
	DelayMS float64 `json:"delayMS,omitempty"`
	Loss    float64 `json:"loss,omitempty"`
}

// FaultsFile mirrors the FaultPreset knob in JSON: the standard fault
// mix at intensity rate ∈ [0, 1]. Zero = dormant.
type FaultsFile struct {
	Rate float64 `json:"rate"`
}

// EventFile mirrors script.Event in JSON. Times and durations are Go
// duration strings ("2h", "90m", "45s"); hosts are targeted as
// "host-17" or "host-3..7" (1-based, inclusive).
//
//	{"at": "2h", "action": "crash", "target": "host-17"}
//	{"at": "4h", "action": "demand-surge", "factor": 3, "fleet": "web", "duration": "1h"}
//	{"at": "6h", "action": "power-cap", "watts": 90000, "duration": "2h"}
type EventFile struct {
	At       string  `json:"at"`
	Action   string  `json:"action"`
	Target   string  `json:"target,omitempty"`
	Repair   string  `json:"repair,omitempty"`
	Duration string  `json:"duration,omitempty"`
	Factor   float64 `json:"factor,omitempty"`
	Fleet    string  `json:"fleet,omitempty"`
	Watts    float64 `json:"watts,omitempty"`
	Rate     float64 `json:"rate,omitempty"`
	Prob     float64 `json:"prob,omitempty"`
	Delay    string  `json:"delay,omitempty"`
	Loss     float64 `json:"loss,omitempty"`
}

// AssertFile mirrors script.Assertion in JSON.
//
//	{"kind": "no-stranded-vm", "over": "10m"}
//	{"kind": "power-below", "watts": 90000}
//	{"kind": "sla-violation-max", "frac": 0.01}
type AssertFile struct {
	Kind  string  `json:"kind"`
	Over  string  `json:"over,omitempty"`
	From  string  `json:"from,omitempty"`
	Until string  `json:"until,omitempty"`
	Watts float64 `json:"watts,omitempty"`
	Frac  float64 `json:"frac,omitempty"`
	Count int     `json:"count,omitempty"`
	KWh   float64 `json:"kwh,omitempty"`
}

// ChaosFile names one chaos pattern instance (see ChaosPatterns).
//
//	{"pattern": "az-outage", "intensity": 0.5, "at": "6h", "duration": "1h"}
type ChaosFile struct {
	Pattern   string  `json:"pattern"`
	Intensity float64 `json:"intensity"`
	At        string  `json:"at,omitempty"`
	Duration  string  `json:"duration,omitempty"`
	Hosts     int     `json:"hosts,omitempty"`
	Salt      uint64  `json:"salt,omitempty"`
}

// ChurnFile mirrors ChurnSpec in JSON.
type ChurnFile struct {
	ArrivalsPerHour   float64 `json:"arrivalsPerHour"`
	MeanLifetimeHours float64 `json:"meanLifetimeHours,omitempty"`
	DemandCores       float64 `json:"demandCores,omitempty"`
	VCPUs             float64 `json:"vcpus,omitempty"`
	MemoryGB          float64 `json:"memoryGB,omitempty"`
}

// ParseScenario decodes and materializes a scenario file. Unknown
// keys are rejected, not ignored: a typo'd knob ("telemtryCap") would
// otherwise silently fall back to its default and the run would
// measure something other than what the file asked for.
func ParseScenario(data []byte) (Scenario, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var f ScenarioFile
	if err := dec.Decode(&f); err != nil {
		return Scenario{}, fmt.Errorf("agilepower: decoding scenario file: %w", err)
	}
	if err := dec.Decode(new(json.RawMessage)); !errors.Is(err, io.EOF) {
		return Scenario{}, fmt.Errorf("agilepower: trailing data after scenario object")
	}
	return f.Build()
}

// Canonical returns the file's canonical encoding for content
// addressing: the decoded struct re-marshalled by encoding/json, which
// is deterministic — struct fields render in declaration order and map
// keys sort — so two requests that decode equal produce identical
// bytes regardless of their original formatting, key order, or
// whitespace. Combined with CodeVersion this is the scenario half of
// the result-cache key (see internal/rescache.Key): same canonical
// bytes + same seed (a field of the file) + same code ⇒ same result
// bytes, by the determinism guarantee the CI gates pin.
func (f ScenarioFile) Canonical() ([]byte, error) {
	data, err := json.Marshal(f)
	if err != nil {
		return nil, fmt.Errorf("agilepower: canonicalizing scenario file: %w", err)
	}
	return data, nil
}

// TotalHosts returns the host count the file would build — the
// homogeneous count or the class sum — for admission budgeting before
// the fleet is materialized.
func (f ScenarioFile) TotalHosts() int {
	if len(f.HostClasses) == 0 {
		return f.Hosts
	}
	n := 0
	for _, hc := range f.HostClasses {
		n += hc.Count
	}
	return n
}

// TotalVMs returns the VM count the file's fleets would build (each
// fleet's effective count, with the builders' minimum of one and the
// services×replicas form), for admission budgeting before the fleet is
// materialized.
func (f ScenarioFile) TotalVMs() int {
	n := 0
	for _, ff := range f.Fleets {
		if ff.Kind == "replicated" {
			n += ff.Services * ff.Replicas
			continue
		}
		n += max1(ff.Count)
	}
	return n
}

// parseDur parses an optional Go duration string ("2h", "90m"); empty
// means zero.
func parseDur(field, s string) (time.Duration, error) {
	if s == "" {
		return 0, nil
	}
	d, err := time.ParseDuration(s)
	if err != nil {
		return 0, fmt.Errorf("agilepower: bad %s duration %q: %w", field, s, err)
	}
	return d, nil
}

// buildEvent converts one EventFile into a script event.
func buildEvent(ef EventFile) (ScriptEvent, error) {
	var e ScriptEvent
	var err error
	if e.At, err = parseDur("at", ef.At); err != nil {
		return e, err
	}
	e.Action = ef.Action
	if ef.Target != "" {
		if e.Host, e.HostTo, err = script.ParseTarget(ef.Target); err != nil {
			return e, err
		}
	}
	if e.Repair, err = parseDur("repair", ef.Repair); err != nil {
		return e, err
	}
	if e.Duration, err = parseDur("duration", ef.Duration); err != nil {
		return e, err
	}
	if e.Delay, err = parseDur("delay", ef.Delay); err != nil {
		return e, err
	}
	e.Factor = ef.Factor
	e.Fleet = ef.Fleet
	e.Watts = ef.Watts
	e.Rate = ef.Rate
	e.Prob = ef.Prob
	e.Loss = ef.Loss
	return e, nil
}

// buildAssert converts one AssertFile into an assertion spec.
func buildAssert(af AssertFile) (AssertSpec, error) {
	var a AssertSpec
	var err error
	a.Kind = af.Kind
	if a.Over, err = parseDur("over", af.Over); err != nil {
		return a, err
	}
	if a.From, err = parseDur("from", af.From); err != nil {
		return a, err
	}
	if a.Until, err = parseDur("until", af.Until); err != nil {
		return a, err
	}
	a.Watts = af.Watts
	a.Frac = af.Frac
	a.Count = af.Count
	a.KWh = af.KWh
	return a, nil
}

// Build materializes the file into a runnable Scenario.
func (f ScenarioFile) Build() (Scenario, error) {
	seed := f.Seed
	if seed == 0 {
		seed = 1
	}
	var fleet []VMSpec
	for i, ff := range f.Fleets {
		fseed := seed + ff.Seed + uint64(i)*1000
		vms, err := buildFleetFile(ff, fseed)
		if err != nil {
			return Scenario{}, fmt.Errorf("agilepower: fleet %d: %w", i, err)
		}
		fleet = append(fleet, vms...)
	}
	if len(fleet) == 0 {
		return Scenario{}, fmt.Errorf("agilepower: scenario file has no fleets")
	}

	sc := Scenario{
		Name:         f.Name,
		Hosts:        f.Hosts,
		HostCores:    f.HostCores,
		HostMemoryGB: f.HostMemoryGB,
		Profile:      f.Profile,
		VMs:          fleet,
		Horizon:      time.Duration(f.HorizonHours * float64(time.Hour)),
		Seed:         seed,
		Shards:       f.Shards,
		EvalWorkers:  f.EvalWorkers,
		Delta:        f.Delta,
		TelemetryCap: f.TelemetryCap,
	}
	if f.Shards < 0 {
		return Scenario{}, fmt.Errorf("agilepower: negative shards %d", f.Shards)
	}
	if f.EvalWorkers < 0 {
		return Scenario{}, fmt.Errorf("agilepower: negative eval workers %d", f.EvalWorkers)
	}
	if f.TelemetryCap < 0 {
		return Scenario{}, fmt.Errorf("agilepower: negative telemetry cap %d", f.TelemetryCap)
	}
	for _, hc := range f.HostClasses {
		sc.HostClasses = append(sc.HostClasses, HostClass{
			Count:    hc.Count,
			Cores:    hc.Cores,
			MemoryGB: hc.MemoryGB,
		})
	}
	if f.Policy != "" {
		found := false
		for _, p := range Policies() {
			if p.Name == f.Policy {
				sc.Manager.Policy = p
				found = true
			}
		}
		if !found {
			return Scenario{}, fmt.Errorf("agilepower: unknown policy %q", f.Policy)
		}
	}
	if m := f.Manager; m != nil {
		sc.Manager.Period = time.Duration(m.PeriodMinutes * float64(time.Minute))
		sc.Manager.TargetUtil = m.TargetUtil
		sc.Manager.WakeThreshold = m.WakeThreshold
		sc.Manager.SpareHosts = m.SpareHosts
		sc.Manager.MinActive = m.MinActive
		sc.Manager.PredictiveWake = m.PredictiveWake
		sc.Manager.PanicShortfall = m.PanicShortfall
		switch m.Forecast {
		case "":
		case "last-value":
			sc.Manager.Forecast = ForecastSpec{Kind: ForecastLastValue}
		case "ewma":
			sc.Manager.Forecast = ForecastSpec{Kind: ForecastEWMA}
		case "peak-window":
			sc.Manager.Forecast = ForecastSpec{Kind: ForecastPeakWindow}
		default:
			return Scenario{}, fmt.Errorf("agilepower: unknown forecast %q", m.Forecast)
		}
		switch m.Incremental {
		case "":
		case "on":
			sc.Manager.Incremental = IncrementalOn
		case "off":
			sc.Manager.Incremental = IncrementalOff
		default:
			return Scenario{}, fmt.Errorf("agilepower: unknown incremental mode %q", m.Incremental)
		}
	}
	if cp := f.CtrlPlane; cp != nil {
		if cp.DelayMS < 0 {
			return Scenario{}, fmt.Errorf("agilepower: negative ctrlplane delay %v ms", cp.DelayMS)
		}
		if cp.Loss < 0 || cp.Loss > 1 {
			return Scenario{}, fmt.Errorf("agilepower: ctrlplane loss %v outside [0,1]", cp.Loss)
		}
		// A zero mix stays nil so no plane is ever constructed (dormancy).
		if cfg := CtrlPreset(time.Duration(cp.DelayMS*float64(time.Millisecond)), cp.Loss); cfg.Enabled() {
			sc.CtrlPlane = &cfg
		}
	}
	if fl := f.Faults; fl != nil {
		if fl.Rate < 0 || fl.Rate > 1 {
			return Scenario{}, fmt.Errorf("agilepower: fault rate %v outside [0,1]", fl.Rate)
		}
		// A zero rate stays nil so no injector is ever constructed
		// (dormancy).
		if cfg := FaultPreset(fl.Rate); cfg.Enabled() {
			sc.Faults = &cfg
		}
	}
	if c := f.Churn; c != nil {
		sc.Churn = &ChurnSpec{
			ArrivalsPerHour: c.ArrivalsPerHour,
			MeanLifetime:    time.Duration(c.MeanLifetimeHours * float64(time.Hour)),
			DemandCores:     c.DemandCores,
			VCPUs:           c.VCPUs,
			MemoryGB:        c.MemoryGB,
		}
	}
	for i, ef := range f.Events {
		e, err := buildEvent(ef)
		if err != nil {
			return Scenario{}, fmt.Errorf("agilepower: event %d: %w", i, err)
		}
		sc.Script = append(sc.Script, e)
	}
	for i, af := range f.Assert {
		a, err := buildAssert(af)
		if err != nil {
			return Scenario{}, fmt.Errorf("agilepower: assertion %d: %w", i, err)
		}
		sc.Asserts = append(sc.Asserts, a)
	}
	for i, cf := range f.Chaos {
		at, err := parseDur("at", cf.At)
		if err != nil {
			return Scenario{}, fmt.Errorf("agilepower: chaos %d: %w", i, err)
		}
		dur, err := parseDur("duration", cf.Duration)
		if err != nil {
			return Scenario{}, fmt.Errorf("agilepower: chaos %d: %w", i, err)
		}
		sc, err = sc.WithChaos(ChaosParams{
			Pattern:   cf.Pattern,
			Intensity: cf.Intensity,
			At:        at,
			Duration:  dur,
			Hosts:     cf.Hosts,
			Salt:      cf.Salt,
		})
		if err != nil {
			return Scenario{}, fmt.Errorf("agilepower: chaos %d: %w", i, err)
		}
	}
	if err := sc.Validate(); err != nil {
		return Scenario{}, err
	}
	return sc, nil
}

func buildFleetFile(ff FleetFile, seed uint64) ([]VMSpec, error) {
	switch ff.Kind {
	case "diurnal":
		return DiurnalFleet(max1(ff.Count), seed), nil
	case "spiky":
		spikes := ff.Spikes
		if spikes <= 0 {
			spikes = 4
		}
		return SpikyFleet(max1(ff.Count), spikes, seed), nil
	case "batch":
		return BatchFleet(max1(ff.Count), seed), nil
	case "mixed":
		return MixedFleet(max1(ff.Count), seed), nil
	case "workday":
		days := ff.Days
		if days <= 0 {
			days = 1
		}
		return WorkdayFleet(max1(ff.Count), days, seed), nil
	case "flat":
		d := ff.Demand
		if d <= 0 {
			d = 1
		}
		return ConstantFleet(max1(ff.Count), d), nil
	case "replicated":
		if ff.Services <= 0 || ff.Replicas <= 0 {
			return nil, fmt.Errorf("replicated fleet needs services and replicas")
		}
		return ReplicatedFleet(ff.Services, ff.Replicas, seed), nil
	default:
		return nil, fmt.Errorf("unknown fleet kind %q", ff.Kind)
	}
}

func max1(n int) int {
	if n < 1 {
		return 1
	}
	return n
}
