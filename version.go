package agilepower

// CodeVersion identifies the simulator's behavior for content
// addressing. Every run here is a deterministic function of (scenario,
// seed, code); the simulation service keys its result cache on all
// three, so cached bytes can be returned forever without a staleness
// check — as long as this string changes whenever the simulator's
// output could. Bump it in any PR that changes result bytes (new
// policies, report fields, accounting fixes); leave it alone for
// wall-clock-only work, which is byte-identical by construction and
// gated as such in CI.
const CodeVersion = "agilepower-sim/10"
