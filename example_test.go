package agilepower_test

import (
	"fmt"
	"time"

	"agilepower"
)

// ExampleScenario_Run runs one managed day and prints the headline
// numbers. Runs are deterministic in the seed, so the output is exact.
func ExampleScenario_Run() {
	sc := agilepower.Scenario{
		Hosts:   4,
		VMs:     agilepower.ConstantFleet(8, 0.5),
		Horizon: 6 * time.Hour,
		Manager: agilepower.ManagerConfig{Policy: agilepower.DPMS3},
	}
	res, err := sc.Run()
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("policy: %s\n", res.Policy)
	fmt.Printf("satisfaction: %.3f\n", res.Satisfaction)
	fmt.Printf("hosts parked at end: %d of %d\n", res.Hosts-3, res.Hosts)
	// Output:
	// policy: dpm-s3
	// satisfaction: 1.000
	// hosts parked at end: 1 of 4
}

// ExampleScenario_RunPolicies compares the standard policy set on the
// same workload.
func ExampleScenario_RunPolicies() {
	sc := agilepower.Scenario{
		Hosts:   4,
		VMs:     agilepower.ConstantFleet(8, 0.5),
		Horizon: 4 * time.Hour,
	}
	results, err := sc.RunPolicies(agilepower.Policies())
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	for _, r := range results {
		fmt.Println(r.Policy)
	}
	// Output:
	// static
	// nopm-drm
	// dpm-s5
	// dpm-s3
}

// ExampleProfile_BreakEven computes the gap length beyond which
// parking a server saves energy — the paper's motivating quantity.
func ExampleProfile_BreakEven() {
	p := agilepower.DefaultProfile()
	s3, _ := p.BreakEven(agilepower.S3)
	s5, _ := p.BreakEven(agilepower.S5)
	fmt.Printf("S3 pays off after %v of idleness\n", s3.Round(time.Second))
	fmt.Printf("S5 pays off after %v of idleness\n", s5.Round(time.Second))
	// Output:
	// S3 pays off after 39s of idleness
	// S5 pays off after 7m7s of idleness
}

// ExampleScenario_Start drives a live session: advance time, hold a
// host for maintenance, and read the outcome.
func ExampleScenario_Start() {
	se, err := agilepower.Scenario{
		Hosts:   4,
		VMs:     agilepower.ConstantFleet(8, 0.5),
		Manager: agilepower.ManagerConfig{Policy: agilepower.NoPM, Period: 2 * time.Minute},
	}.Start()
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	se.Step(10 * time.Minute)
	se.EnterMaintenance(1)
	se.Step(30 * time.Minute)
	fmt.Printf("host 1 drained: %v\n", se.MaintenanceReady(1))
	res := se.Result()
	fmt.Printf("migrations: %d\n", res.Migrations.Completed)
	// Output:
	// host 1 drained: true
	// migrations: 2
}
