package agilepower

import (
	"testing"
	"time"
)

// End-to-end conservation properties over full runs: the recorded
// series must obey physics and accounting at every sample, for every
// policy.
func TestRunSeriesConservationProperties(t *testing.T) {
	sc := Scenario{
		Hosts:   6,
		VMs:     MixedFleet(24, 9),
		Horizon: 10 * time.Hour,
		Seed:    9,
	}
	for _, p := range Policies() {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			s := sc
			s.Manager.Policy = p
			res, err := s.Run()
			if err != nil {
				t.Fatal(err)
			}
			peakFleet := float64(res.Hosts) * 250 // peak watts per host
			for _, pt := range res.Delivered.Points() {
				demand := res.Demand.At(pt.At)
				if pt.Value > demand+1e-6 {
					t.Fatalf("delivered %v > demand %v at %v", pt.Value, demand, pt.At)
				}
				if pt.Value < 0 {
					t.Fatalf("negative delivery at %v", pt.At)
				}
			}
			for _, pt := range res.Power.Points() {
				if pt.Value <= 0 || pt.Value > peakFleet {
					t.Fatalf("power %v outside (0, %v] at %v", pt.Value, peakFleet, pt.At)
				}
			}
			for _, pt := range res.ActiveHosts.Points() {
				if pt.Value < 0 || pt.Value > float64(res.Hosts) {
					t.Fatalf("active hosts %v outside [0,%d] at %v", pt.Value, res.Hosts, pt.At)
				}
			}
			// Energy equals the integral of the power series within
			// sampling error (series samples at each evaluation, and
			// every power change triggers an evaluation, so this must
			// be nearly exact).
			integrated := res.Power.Integrate(0, res.Horizon)
			if diff := abs(integrated-float64(res.Energy)) / float64(res.Energy); diff > 0.01 {
				t.Fatalf("power series integral %v vs accounted energy %v (%.2f%% off)",
					integrated, float64(res.Energy), diff*100)
			}
			// Satisfaction and violation are coherent.
			if res.Satisfaction < 0 || res.Satisfaction > 1 ||
				res.ViolationFraction < 0 || res.ViolationFraction > 1 {
				t.Fatalf("SLA metrics out of range: %v / %v", res.Satisfaction, res.ViolationFraction)
			}
		})
	}
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
