package agilepower

import (
	"fmt"
	"time"

	"agilepower/internal/cluster"
	"agilepower/internal/core"
	"agilepower/internal/faults"
	"agilepower/internal/host"
	"agilepower/internal/script"
	"agilepower/internal/sim"
)

// AssertionResult is the verdict on one scenario assertion.
type AssertionResult struct {
	// Assert is the spec the verdict is about.
	Assert AssertSpec
	// Violated reports whether the predicate failed.
	Violated bool
	// At is when a continuous assertion first latched its violation
	// (the run horizon for final assertions).
	At time.Duration
	// Observed is the value that violated the bound (or the final
	// observed value for passing final assertions).
	Observed float64
}

// String renders a one-line verdict.
func (r AssertionResult) String() string {
	verdict := "PASS"
	if r.Violated {
		verdict = "FAIL"
	}
	return fmt.Sprintf("%-4s %s (observed %.4g at %v)", verdict, r.Assert.String(), r.Observed, r.At)
}

// compileScript schedules one engine event per script entry. Caller
// guarantees (via Scenario.Validate) that events needing the fault
// injector or control plane only appear when those subsystems are
// enabled. Events apply best-effort: an action that cannot take at its
// fire time (crashing a host that is already down, draining a crashed
// host) bumps the manager's script_skipped counter and the run
// continues — scripts describe intent against a fleet whose state they
// do not control.
func (se *Session) compileScript(evs []ScriptEvent) {
	for _, e := range evs {
		e := e
		se.eng.ScheduleFunc(sim.Time(e.At), func() { se.applyEvent(e) })
	}
}

func (se *Session) applyEvent(e ScriptEvent) {
	switch e.Action {
	case script.ActionCrash:
		repair := e.Repair
		if repair <= 0 {
			repair = 10 * time.Minute
		}
		for id := e.HostLo(); id <= e.HostHi(); id++ {
			hid := host.ID(id)
			if err := se.cl.CrashHost(hid, repair); err == nil {
				continue
			}
			// A parked host has no workload to crash, but the outage
			// still keeps it from being woken until the repair: model
			// that as a maintenance hold released at repair time.
			if err := se.mgr.EnterMaintenance(hid); err != nil {
				se.mgr.Counters().Inc(core.CtrScriptSkipped)
				continue
			}
			se.eng.ScheduleFunc(sim.Time(e.At+repair), func() {
				_ = se.mgr.ExitMaintenance(hid)
			})
		}
	case script.ActionMaintenance:
		for id := e.HostLo(); id <= e.HostHi(); id++ {
			if err := se.mgr.EnterMaintenance(host.ID(id)); err != nil {
				se.mgr.Counters().Inc(core.CtrScriptSkipped)
			}
		}
	case script.ActionMaintenanceEnd:
		for id := e.HostLo(); id <= e.HostHi(); id++ {
			if err := se.mgr.ExitMaintenance(host.ID(id)); err != nil {
				se.mgr.Counters().Inc(core.CtrScriptSkipped)
			}
		}
	case script.ActionPowerCap:
		se.mgr.SetPowerCap(e.Watts)
		if e.Watts > 0 && e.Duration > 0 {
			se.eng.ScheduleFunc(sim.Time(e.At+e.Duration), func() { se.mgr.SetPowerCap(0) })
		}
	case script.ActionDemandSurge:
		if se.cl.ScaleDemandPrefix(e.Fleet, e.Factor) == 0 {
			se.mgr.Counters().Inc(core.CtrScriptSkipped)
		}
		if e.Duration > 0 {
			fleet := e.Fleet
			se.eng.ScheduleFunc(sim.Time(e.At+e.Duration), func() {
				se.cl.ScaleDemandPrefix(fleet, 1)
			})
		}
	case script.ActionFaultRate:
		if err := se.inj.Tune(faults.Preset(e.Rate)); err != nil {
			se.mgr.Counters().Inc(core.CtrScriptSkipped)
		}
		if e.Duration > 0 {
			se.eng.ScheduleFunc(sim.Time(e.At+e.Duration), func() {
				_ = se.inj.Tune(se.baseFaults)
			})
		}
	case script.ActionWakeFail:
		cfg := se.inj.Config()
		cfg.WakeFailProb = e.Prob
		if err := se.inj.Tune(cfg); err != nil {
			se.mgr.Counters().Inc(core.CtrScriptSkipped)
		}
		if e.Duration > 0 {
			se.eng.ScheduleFunc(sim.Time(e.At+e.Duration), func() {
				restored := se.inj.Config()
				restored.WakeFailProb = se.baseFaults.WakeFailProb
				_ = se.inj.Tune(restored)
			})
		}
	case script.ActionCtrlDegrade:
		se.cp.SetImpairment(e.Delay, e.Loss)
		if e.Duration > 0 {
			se.eng.ScheduleFunc(sim.Time(e.At+e.Duration), func() { se.cp.RestoreImpairment() })
		}
	case script.ActionCtrlPartition:
		se.cp.Partition()
		se.eng.ScheduleFunc(sim.Time(e.At+e.Duration), func() { se.cp.RestoreImpairment() })
	}
}

// assertEngine evaluates a scenario's assertions. Continuous kinds
// piggyback on the cluster's evaluation tick via OnTick — no extra
// engine events, so an asserted run's simulation is byte-identical to
// an unasserted one — and final kinds are checked once in finish. A
// violation latches: the first moment the bad condition has persisted
// past the spec's grace is recorded and the verdict never un-fails.
type assertEngine struct {
	specs  []AssertSpec
	states []assertState
}

type assertState struct {
	bad      bool
	badSince sim.Time
	violated bool
	at       sim.Time
	observed float64
}

func newAssertEngine(specs []AssertSpec) *assertEngine {
	return &assertEngine{specs: specs, states: make([]assertState, len(specs))}
}

// tick checks every continuous assertion against one evaluation
// tick's aggregates.
func (ae *assertEngine) tick(ts cluster.TickStats) {
	for i := range ae.specs {
		a := &ae.specs[i]
		st := &ae.states[i]
		if st.violated || !a.Continuous() {
			continue
		}
		now := time.Duration(ts.Now)
		if now < a.From || (a.Until > 0 && now > a.Until) {
			st.bad = false
			continue
		}
		var bad bool
		var obs float64
		switch a.Kind {
		case script.KindNoStrandedVM:
			obs = float64(ts.Stranded)
			bad = ts.Stranded > 0
		case script.KindPowerBelow:
			obs = ts.PowerW
			bad = ts.PowerW > a.Watts
		case script.KindNoPendingVM:
			obs = float64(ts.Pending)
			bad = ts.Pending > 0
		case script.KindActiveHostsMin:
			obs = float64(ts.Active)
			bad = ts.Active < a.Count
		}
		if !bad {
			st.bad = false
			continue
		}
		if !st.bad {
			st.bad = true
			st.badSince = ts.Now
		}
		if time.Duration(ts.Now-st.badSince) >= a.Over {
			st.violated = true
			st.at = ts.Now
			st.observed = obs
		}
	}
}

// finish evaluates the final assertions against the collected Result
// and writes all verdicts (continuous and final) into it.
func (ae *assertEngine) finish(res *Result) {
	res.Assertions = make([]AssertionResult, len(ae.specs))
	for i, a := range ae.specs {
		st := ae.states[i]
		ar := AssertionResult{Assert: a}
		if a.Continuous() {
			ar.Violated = st.violated
			ar.At = time.Duration(st.at)
			ar.Observed = st.observed
		} else {
			ar.At = res.Horizon
			switch a.Kind {
			case script.KindSLAViolationMax:
				ar.Observed = res.ViolationFraction
				ar.Violated = res.ViolationFraction > a.Frac
			case script.KindSatisfactionMin:
				ar.Observed = res.Satisfaction
				ar.Violated = res.Satisfaction < a.Frac
			case script.KindEnergyBelow:
				ar.Observed = res.EnergyKWh()
				ar.Violated = res.EnergyKWh() > a.KWh
			}
		}
		if ar.Violated {
			res.AssertionFailures++
		}
		res.Assertions[i] = ar
	}
}
