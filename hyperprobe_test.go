package agilepower

import (
	"fmt"
	"os"
	"runtime"
	"testing"
	"time"
)

// TestHyperFullHeapProbe builds the full-scale hyperscale fleet
// (100,000 hosts / 1,000,000 VMs), advances a couple of simulated
// minutes, and reports wall time and live heap per stage. Gated
// behind an env var: a manual probe for the "laptop-sized heap"
// claim, not a CI test — a full simulated day's wall time is
// dominated by the manager's per-migration re-planning (see ROADMAP
// item 1), not by the delta tick this probe exercises.
func TestHyperFullHeapProbe(t *testing.T) {
	if os.Getenv("HYPER_PROBE") == "" {
		t.Skip("set HYPER_PROBE=1 to run")
	}
	// Stream to stderr rather than t.Logf so progress is visible even
	// if a later stage is interrupted.
	logHeap := func(stage string, since time.Time) {
		var m runtime.MemStats
		runtime.GC()
		runtime.ReadMemStats(&m)
		fmt.Fprintf(os.Stderr, "probe: %s: %v wall; live heap %d MiB, sys %d MiB\n",
			stage, time.Since(since).Round(time.Millisecond), m.HeapAlloc>>20, m.Sys>>20)
	}
	sc := Scenario{
		Name: "hyper-probe", Hosts: 100000, HostCores: 16, HostMemoryGB: 256,
		Horizon: 24 * time.Hour,
		Manager: ManagerConfig{Policy: DPMS3},
		VMs:     HyperscaleFleet(1000000, 1),
		Shards:  16, Delta: true, TelemetryCap: 4096,
	}
	start := time.Now()
	se, err := sc.Start()
	if err != nil {
		t.Fatal(err)
	}
	logHeap("Start (build + initial evaluation + first control step)", start)
	step := time.Now()
	if err := se.RunUntil(2 * time.Minute); err != nil {
		t.Fatal(err)
	}
	logHeap("RunUntil(2m)", step)
}
