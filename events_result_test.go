package agilepower

import (
	"testing"
	"time"

	"agilepower/internal/events"
)

// The audit trail must reconcile with the run's counters.
func TestResultEventsReconcile(t *testing.T) {
	sc := Scenario{
		Hosts:   6,
		VMs:     ConstantFleet(12, 0.5),
		Horizon: 4 * time.Hour,
		Manager: ManagerConfig{Policy: DPMS3},
		Churn: &ChurnSpec{
			ArrivalsPerHour: 4,
			MeanLifetime:    time.Hour,
		},
	}
	res, err := sc.Run()
	if err != nil {
		t.Fatal(err)
	}
	log := res.Events
	if log == nil || log.Len() == 0 {
		t.Fatal("no events recorded")
	}
	counts := log.Counts()
	if counts[events.MigrationCompleted] != res.Migrations.Completed {
		t.Fatalf("migration events %d vs counter %d",
			counts[events.MigrationCompleted], res.Migrations.Completed)
	}
	if counts[events.HostSleeping] != res.Sleeps {
		t.Fatalf("sleep events %d vs counter %d", counts[events.HostSleeping], res.Sleeps)
	}
	if counts[events.HostWaking] != res.Wakes {
		t.Fatalf("wake events %d vs counter %d", counts[events.HostWaking], res.Wakes)
	}
	if counts[events.VMArrived] != res.Churn.Arrived {
		t.Fatalf("arrival events %d vs churn %d", counts[events.VMArrived], res.Churn.Arrived)
	}
	if counts[events.VMRemoved] != res.Churn.Departed {
		t.Fatalf("removal events %d vs churn %d", counts[events.VMRemoved], res.Churn.Departed)
	}
	// Initial placements + provisioned placements.
	wantPlaced := len(sc.VMs) + res.Churn.Placed
	if counts[events.VMPlaced] != wantPlaced {
		t.Fatalf("placed events %d, want %d", counts[events.VMPlaced], wantPlaced)
	}
	// Every settle pairs with a sleep or wake start.
	if counts[events.HostSettled] != res.Sleeps+res.Wakes {
		t.Fatalf("settle events %d vs %d actions", counts[events.HostSettled], res.Sleeps+res.Wakes)
	}
	// Events are time-ordered.
	prev := time.Duration(-1)
	for _, e := range log.All() {
		if e.At < prev {
			t.Fatalf("events out of order at %v", e.At)
		}
		prev = e.At
	}
}
