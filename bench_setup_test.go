package agilepower

// World-construction cost: cold Start versus Prototype.Fork.
//
// Every cell of an experiment grid used to rebuild its world from
// scratch — host construction, power machines, initial placement —
// before simulating a single second. The snapshot/fork layer pays that
// once per grid: Prototype() builds the world, Fork() stamps out each
// cell as flat slice copies.
//
// Two views are recorded, at the hyperscale experiment's quick scale
// (256 hosts / 4096 VMs) and at the 16384-host / 131072-VM fixture the
// delta-evaluation and incremental-planning reworks are gated on:
//
//   - BenchmarkWorldBuildVsFork isolates per-cell world construction —
//     the work the snapshot layer moves out of the per-cell path. The
//     acceptance bar for the rework is fork >= 5x cheaper than cold.
//   - BenchmarkWorldForkVsColdStart is end-to-end session creation
//     (world + manager + start-of-time evaluation); the start-of-time
//     work runs per cell on both paths, so the ratio is lower by that
//     shared floor.
//
// `make bench-setup` captures both into BENCH_setup.json.

import (
	"testing"
	"time"

	"agilepower/internal/sim"
)

// setupSizes are the two fixture scales the setup artifact records.
var setupSizes = []struct {
	name       string
	hosts, vms int
}{
	{"quick-256h-4096vm", 256, 4096},
	{"hyper-16384h-131072vm", 16384, 131072},
}

// setupScenario mirrors the hyperscale experiment's world shape: a
// homogeneous fleet, delta evaluation, capped telemetry, pooled traces.
func setupScenario(hosts, vms int) Scenario {
	return Scenario{
		Name:         "bench-setup",
		Hosts:        hosts,
		VMs:          HyperscaleFleet(vms, 1),
		Horizon:      time.Hour,
		Seed:         1,
		Delta:        true,
		TelemetryCap: 4096,
		Manager:      ManagerConfig{Policy: DPMS3},
	}
}

// BenchmarkWorldBuildVsFork measures per-cell world construction only:
// a full cold build (validation, cluster, hosts, initial placement —
// what Prototype does, and what every cold cell used to redo) versus
// forking the already-built world onto a fresh engine.
func BenchmarkWorldBuildVsFork(b *testing.B) {
	for _, sz := range setupSizes {
		sz := sz
		sc := setupScenario(sz.hosts, sz.vms)
		b.Run("cold/"+sz.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := sc.Prototype(); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run("fork/"+sz.name, func(b *testing.B) {
			proto, err := sc.Prototype()
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := proto.cl.Fork(sim.NewEngine(sc.Seed)); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func benchColdStart(b *testing.B, sc Scenario) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		se, err := sc.Start()
		if err != nil {
			b.Fatal(err)
		}
		b.StopTimer()
		se.Result() // retire the session so iterations stay independent
		b.StartTimer()
	}
}

func benchFork(b *testing.B, sc Scenario) {
	proto, err := sc.Prototype()
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		se, err := proto.Fork(sc)
		if err != nil {
			b.Fatal(err)
		}
		b.StopTimer()
		se.Result()
		b.StartTimer()
	}
}

// BenchmarkWorldForkVsColdStart measures end-to-end session creation —
// the full Start path versus a Fork from a prebuilt Prototype. Both
// sides include the per-cell start-of-time work (manager construction,
// initial evaluation), so the gap here is exactly the world
// construction BenchmarkWorldBuildVsFork isolates.
func BenchmarkWorldForkVsColdStart(b *testing.B) {
	for _, sz := range setupSizes {
		sz := sz
		sc := setupScenario(sz.hosts, sz.vms)
		b.Run("cold/"+sz.name, func(b *testing.B) { benchColdStart(b, sc) })
		b.Run("fork/"+sz.name, func(b *testing.B) { benchFork(b, sc) })
	}
}
