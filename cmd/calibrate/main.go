// Command calibrate turns prototype power measurements into a reusable
// server profile: it reads a CSV of (utilization, watts) samples from
// a SPECpower-style load sweep, fits the 11-point utilization→power
// curve (with gap interpolation and isotonic smoothing), merges in the
// sleep-state timings, and emits the profile as JSON ready for the
// simulator.
//
//	calibrate -in measurements.csv -name myserver -out profile.json
//	calibrate -in measurements.csv            # JSON to stdout + summary table
//
// The input CSV needs a header and two columns: utilization (0..1 or
// 0..100) and watts.
package main

import (
	"encoding/csv"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"time"

	"agilepower/internal/power"
	"agilepower/internal/report"
)

func main() {
	in := flag.String("in", "", "input CSV of utilization,watts samples (default stdin)")
	out := flag.String("out", "", "output profile JSON path (default stdout)")
	name := flag.String("name", "calibrated", "profile name")
	deepIdle := flag.Float64("deepidle-w", 0, "deep-idle (C6) power in watts, 0 to omit")
	s3Power := flag.Float64("s3-w", 12, "S3 parked power (W); negative to omit S3")
	s3Entry := flag.Duration("s3-entry", 8*time.Second, "S3 entry latency")
	s3Exit := flag.Duration("s3-exit", 15*time.Second, "S3 exit latency")
	s5Power := flag.Float64("s5-w", 4, "S5 parked power (W); negative to omit S5")
	s5Entry := flag.Duration("s5-entry", 45*time.Second, "S5 entry latency")
	s5Exit := flag.Duration("s5-exit", 190*time.Second, "S5 exit latency")
	flag.Parse()

	var r io.Reader = os.Stdin
	if *in != "" {
		f, err := os.Open(*in)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		r = f
	}
	ms, err := readMeasurements(r)
	if err != nil {
		fatal(err)
	}

	curve, err := power.FitCurve(ms)
	if err != nil {
		fatal(err)
	}
	sleep := map[power.State]power.StateSpec{}
	if *s3Power >= 0 {
		sleep[power.S3] = power.StateSpec{
			Power:        power.Watts(*s3Power),
			EntryLatency: *s3Entry,
			ExitLatency:  *s3Exit,
			EntryPower:   curve[0],
			ExitPower:    curve[9],
		}
	}
	if *s5Power >= 0 {
		sleep[power.S5] = power.StateSpec{
			Power:        power.Watts(*s5Power),
			EntryLatency: *s5Entry,
			ExitLatency:  *s5Exit,
			EntryPower:   curve[0],
			ExitPower:    curve[9],
		}
	}
	profile, err := power.CalibrateProfile(*name, ms, power.Watts(*deepIdle), sleep)
	if err != nil {
		fatal(err)
	}

	data, err := json.MarshalIndent(profile, "", "  ")
	if err != nil {
		fatal(err)
	}
	if *out != "" {
		if err := os.WriteFile(*out, append(data, '\n'), 0o644); err != nil {
			fatal(err)
		}
		fmt.Printf("profile written to %s\n", *out)
	} else {
		fmt.Println(string(data))
	}

	// Summary to stderr so stdout stays pipeable JSON.
	tbl := report.NewTable(
		fmt.Sprintf("fitted curve for %q (%d samples)", *name, len(ms)),
		"util", "watts")
	for i, w := range profile.Curve {
		tbl.AddRow(fmt.Sprintf("%d%%", i*10), float64(w))
	}
	if err := tbl.Write(os.Stderr); err != nil {
		fatal(err)
	}
	for _, st := range []power.State{power.S3, power.S5} {
		if be, ok := profile.BreakEven(st); ok {
			fmt.Fprintf(os.Stderr, "%v break-even: %v\n", st, be.Round(time.Second))
		}
	}
}

// readMeasurements parses utilization,watts rows. Utilization may be
// given as a fraction (0..1) or percentage (0..100).
func readMeasurements(r io.Reader) ([]power.Measurement, error) {
	recs, err := csv.NewReader(r).ReadAll()
	if err != nil {
		return nil, fmt.Errorf("reading csv: %w", err)
	}
	if len(recs) < 2 {
		return nil, fmt.Errorf("csv needs a header and at least one sample")
	}
	var ms []power.Measurement
	for i, rec := range recs[1:] {
		if len(rec) < 2 {
			return nil, fmt.Errorf("row %d: want 2 columns, got %d", i+2, len(rec))
		}
		u, err := strconv.ParseFloat(rec[0], 64)
		if err != nil {
			return nil, fmt.Errorf("row %d utilization: %w", i+2, err)
		}
		w, err := strconv.ParseFloat(rec[1], 64)
		if err != nil {
			return nil, fmt.Errorf("row %d watts: %w", i+2, err)
		}
		if u > 1 {
			u /= 100 // percentage form
		}
		ms = append(ms, power.Measurement{Util: u, Power: power.Watts(w)})
	}
	return ms, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "calibrate:", err)
	os.Exit(1)
}
