package main

import (
	"strings"
	"testing"
)

func TestReadMeasurements(t *testing.T) {
	in := "util,watts\n0,100\n0.5,180\n1,250\n"
	ms, err := readMeasurements(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != 3 || ms[1].Util != 0.5 || ms[1].Power != 180 {
		t.Fatalf("ms = %+v", ms)
	}
}

func TestReadMeasurementsPercentForm(t *testing.T) {
	in := "util,watts\n10,130\n50,180\n100,250\n"
	ms, err := readMeasurements(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if ms[0].Util != 0.1 || ms[2].Util != 1 {
		t.Fatalf("percent conversion wrong: %+v", ms)
	}
}

func TestReadMeasurementsErrors(t *testing.T) {
	cases := []string{
		"util,watts\n",          // no samples
		"util,watts\nx,100\n",   // bad util
		"util,watts\n0.5,abc\n", // bad watts
		"util,watts\n0.5\n",     // missing column
	}
	for _, in := range cases {
		if _, err := readMeasurements(strings.NewReader(in)); err == nil {
			t.Errorf("accepted %q", in)
		}
	}
}
