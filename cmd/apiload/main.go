// Command apiload drives concurrent load against a running agilepmd
// and gates on the outcome: N session goroutines each issue a mix of
// hot (repeated-shape, cache-hittable) and cold (unique-seed) blocking
// run submissions, latencies are recorded per request and tagged by
// the server's X-Cache disposition, and the process exits nonzero if
// any request failed or the observed cache hit rate fell below the
// floor. It is the acceptance harness for the async simulation
// service: zero failed jobs at a thousand concurrent sessions, and
// cache hits orders of magnitude faster than cold runs.
//
// Results print as Go benchmark lines on stdout so cmd/benchjson can
// record them into a JSON artifact:
//
//	apiload -addr http://localhost:8080 -sessions 1000 > bench.txt
//	go run ./cmd/benchjson -label api-load -out BENCH_api.json < bench.txt
//
// The human-readable summary (percentiles, throughput, hit rate) goes
// to stderr.
package main

import (
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

func main() {
	addr := flag.String("addr", "http://localhost:8080", "agilepmd base URL")
	sessions := flag.Int("sessions", 1000, "concurrent client sessions")
	perSession := flag.Int("per-session", 2, "requests per session")
	shapes := flag.Int("shapes", 4, "distinct hot request shapes shared across sessions")
	coldEvery := flag.Int("cold-every", 4, "every Nth request per session uses a unique seed (0 = never)")
	tenants := flag.Int("tenants", 8, "tenants to spread sessions across")
	hosts := flag.Int("hosts", 4, "hosts per run request")
	vms := flag.Int("vms", 8, "vms per run request")
	horizon := flag.Float64("horizon-hours", 1, "simulated hours per run request")
	waitReady := flag.Duration("wait-ready", 30*time.Second, "how long to poll /healthz before giving up")
	maxFailed := flag.Int("max-failed", 0, "maximum tolerated failed requests")
	minHitRate := flag.Float64("min-hit-rate", 0, "minimum cache hit rate across the concurrent burst")
	probeHits := flag.Int("probe-hits", 25, "sequential cache-hit probes per shape before the burst (0 disables the probe phase)")
	probeHosts := flag.Int("probe-hosts", 48, "hosts per probe request (heavier than the burst so the cold/hit gap measures the simulation)")
	probeVMs := flag.Int("probe-vms", 192, "vms per probe request")
	probeHorizon := flag.Float64("probe-horizon-hours", 24, "simulated hours per probe request")
	minSpeedup := flag.Float64("min-hit-speedup", 0, "minimum probe cold-mean / hit-mean ratio (0 = no gate)")
	flag.Parse()

	if err := waitHealthy(*addr, *waitReady); err != nil {
		fmt.Fprintf(os.Stderr, "apiload: %v\n", err)
		os.Exit(1)
	}

	client := &http.Client{
		Timeout: 10 * time.Minute,
		Transport: &http.Transport{
			MaxIdleConns:        *sessions + 16,
			MaxIdleConnsPerHost: *sessions + 16,
		},
	}

	type sample struct {
		d   time.Duration
		hit bool
	}
	var (
		mu      sync.Mutex
		samples []sample
		failed  atomic.Int64
		coldSeq atomic.Uint64
	)
	coldSeq.Store(1 << 20) // unique seeds, disjoint from hot shapes

	body := func(hosts, vms int, horizon float64, seed uint64, tenant int) string {
		return fmt.Sprintf(
			`{"hosts":%d,"vms":%d,"fleet":"flat","flatDemand":0.5,"horizonHours":%g,"seed":%d,"tenant":"t%d"}`,
			hosts, vms, horizon, seed, tenant)
	}
	post := func(payload string) (time.Duration, bool, error) {
		began := time.Now()
		resp, err := client.Post(*addr+"/v1/runs?wait=1", "application/json",
			strings.NewReader(payload))
		if err != nil {
			return 0, false, err
		}
		_, _ = io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return 0, false, fmt.Errorf("status %d", resp.StatusCode)
		}
		return time.Since(began), resp.Header.Get("X-Cache") == "hit", nil
	}

	// Probe phase: sequential, uncontended requests per hot shape — one
	// cold (populating the cache) and probe-hits repeated hits — so the
	// recorded cold-vs-hit latency comparison measures the cache, not
	// scheduling contention during the burst.
	var probeCold, probeHot []time.Duration
	if *probeHits > 0 {
		for shape := 1; shape <= *shapes; shape++ {
			payload := body(*probeHosts, *probeVMs, *probeHorizon, uint64(shape), shape%*tenants)
			d, hit, err := post(payload)
			if err != nil {
				fmt.Fprintf(os.Stderr, "apiload: probe shape %d: %v\n", shape, err)
				os.Exit(2)
			}
			if !hit {
				probeCold = append(probeCold, d)
			}
			for i := 0; i < *probeHits; i++ {
				d, hit, err := post(payload)
				if err != nil || !hit {
					fmt.Fprintf(os.Stderr, "apiload: probe shape %d hit %d: err=%v hit=%v\n", shape, i, err, hit)
					os.Exit(2)
				}
				probeHot = append(probeHot, d)
			}
		}
		report(os.Stderr, "probe-cold", probeCold)
		report(os.Stderr, "probe-hit", probeHot)
	}

	start := time.Now()
	var wg sync.WaitGroup
	for s := 0; s < *sessions; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			for i := 0; i < *perSession; i++ {
				seed := uint64(s*(*perSession)+i)%uint64(*shapes) + 1
				if *coldEvery > 0 && i%*coldEvery == *coldEvery-1 {
					seed = coldSeq.Add(1)
				}
				d, hit, err := post(body(*hosts, *vms, *horizon, seed, s%*tenants))
				if err != nil {
					failed.Add(1)
					fmt.Fprintf(os.Stderr, "apiload: session %d: %v\n", s, err)
					continue
				}
				mu.Lock()
				samples = append(samples, sample{d: d, hit: hit})
				mu.Unlock()
			}
		}(s)
	}
	wg.Wait()
	elapsed := time.Since(start)

	var all, hot, cold []time.Duration
	for _, sm := range samples {
		all = append(all, sm.d)
		if sm.hit {
			hot = append(hot, sm.d)
		} else {
			cold = append(cold, sm.d)
		}
	}
	total := len(all) + int(failed.Load())
	hitRate := 0.0
	if len(all) > 0 {
		hitRate = float64(len(hot)) / float64(len(all))
	}
	rps := float64(len(all)) / elapsed.Seconds()

	fmt.Fprintf(os.Stderr, "apiload: %d sessions x %d requests: %d ok, %d failed in %v (%.1f req/s, hit rate %.3f)\n",
		*sessions, *perSession, len(all), failed.Load(), elapsed.Round(time.Millisecond), rps, hitRate)
	report(os.Stderr, "all", all)
	report(os.Stderr, "hot", hot)
	report(os.Stderr, "cold", cold)

	// Benchmark lines for cmd/benchjson. Iteration counts carry the
	// sample sizes; the ns/op values are the statistics themselves. The
	// probe pair is the clean cache comparison (sequential requests, no
	// contention); the burst lines are behavior under full concurrency.
	benchLine("BenchmarkAPIColdProbeMean", len(probeCold), mean(probeCold))
	benchLine("BenchmarkAPIHitProbeMean", len(probeHot), mean(probeHot))
	benchLine("BenchmarkAPIHitProbeP99", len(probeHot), percentile(probeHot, 99))
	benchLine("BenchmarkAPIRequestMean", len(all), mean(all))
	benchLine("BenchmarkAPIRequestP50", len(all), percentile(all, 50))
	benchLine("BenchmarkAPIRequestP95", len(all), percentile(all, 95))
	benchLine("BenchmarkAPIRequestP99", len(all), percentile(all, 99))
	benchLine("BenchmarkAPIHotRequestMean", len(hot), mean(hot))
	benchLine("BenchmarkAPIHotRequestP99", len(hot), percentile(hot, 99))
	benchLine("BenchmarkAPIColdRequestMean", len(cold), mean(cold))
	benchLine("BenchmarkAPIColdRequestP99", len(cold), percentile(cold, 99))
	if rps > 0 {
		benchLine("BenchmarkAPIThroughput", len(all), time.Duration(float64(time.Second)/rps))
	}

	if int(failed.Load()) > *maxFailed {
		fmt.Fprintf(os.Stderr, "apiload: FAIL: %d failed requests (max %d)\n", failed.Load(), *maxFailed)
		os.Exit(2)
	}
	if total == 0 {
		fmt.Fprintln(os.Stderr, "apiload: FAIL: no requests issued")
		os.Exit(2)
	}
	if hitRate < *minHitRate {
		fmt.Fprintf(os.Stderr, "apiload: FAIL: hit rate %.3f below floor %.3f\n", hitRate, *minHitRate)
		os.Exit(2)
	}
	if len(probeCold) > 0 && len(probeHot) > 0 {
		speedup := float64(mean(probeCold)) / float64(mean(probeHot))
		fmt.Fprintf(os.Stderr, "apiload: cache-hit speedup: %.0fx (cold %v vs hit %v)\n",
			speedup, mean(probeCold).Round(time.Microsecond), mean(probeHot).Round(time.Microsecond))
		if *minSpeedup > 0 && speedup < *minSpeedup {
			fmt.Fprintf(os.Stderr, "apiload: FAIL: speedup %.0fx below floor %.0fx\n", speedup, *minSpeedup)
			os.Exit(2)
		}
	}
}

// waitHealthy polls /healthz until the daemon answers (the container
// has no curl; the harness is its own readiness probe).
func waitHealthy(addr string, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for {
		resp, err := http.Get(addr + "/healthz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return nil
			}
		}
		if time.Now().After(deadline) {
			if err != nil {
				return fmt.Errorf("server not ready after %v: %v", timeout, err)
			}
			return fmt.Errorf("server not ready after %v", timeout)
		}
		time.Sleep(100 * time.Millisecond)
	}
}

func report(w io.Writer, label string, ds []time.Duration) {
	if len(ds) == 0 {
		fmt.Fprintf(w, "apiload: %5s: no samples\n", label)
		return
	}
	fmt.Fprintf(w, "apiload: %5s: n=%d mean=%v p50=%v p95=%v p99=%v\n",
		label, len(ds), mean(ds).Round(time.Microsecond),
		percentile(ds, 50).Round(time.Microsecond),
		percentile(ds, 95).Round(time.Microsecond),
		percentile(ds, 99).Round(time.Microsecond))
}

func benchLine(name string, n int, d time.Duration) {
	if n == 0 {
		return
	}
	fmt.Printf("%s %d %d ns/op\n", name, n, d.Nanoseconds())
}

func mean(ds []time.Duration) time.Duration {
	if len(ds) == 0 {
		return 0
	}
	var sum time.Duration
	for _, d := range ds {
		sum += d
	}
	return sum / time.Duration(len(ds))
}

// percentile returns the pth percentile by nearest-rank.
func percentile(ds []time.Duration, p float64) time.Duration {
	if len(ds) == 0 {
		return 0
	}
	sorted := append([]time.Duration(nil), ds...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	rank := int(p/100*float64(len(sorted))+0.5) - 1
	if rank < 0 {
		rank = 0
	}
	if rank >= len(sorted) {
		rank = len(sorted) - 1
	}
	return sorted[rank]
}
