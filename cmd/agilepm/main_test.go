package main

import (
	"strings"
	"testing"
)

func TestBuildFleetKinds(t *testing.T) {
	for _, kind := range []string{"diurnal", "spiky", "batch", "mixed", "flat"} {
		fleet, err := buildFleet(kind, 10, 1.5, 1)
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		if len(fleet) != 10 {
			t.Fatalf("%s fleet size = %d", kind, len(fleet))
		}
		for _, v := range fleet {
			if v.Trace == nil {
				t.Fatalf("%s fleet has VM without trace", kind)
			}
		}
	}
	if _, err := buildFleet("nope", 4, 1, 1); err == nil {
		t.Fatal("unknown workload accepted")
	}
}

func TestSelectPolicies(t *testing.T) {
	all, err := selectPolicies("all")
	if err != nil || len(all) != 4 {
		t.Fatalf("all → %d policies, err=%v", len(all), err)
	}
	one, err := selectPolicies("DPM-S3") // case-insensitive
	if err != nil || len(one) != 1 || one[0].Name != "dpm-s3" {
		t.Fatalf("dpm-s3 → %+v, err=%v", one, err)
	}
	if _, err := selectPolicies("yolo"); err == nil {
		t.Fatal("unknown policy accepted")
	}
	if _, err := selectPolicies("yolo"); err != nil && !strings.Contains(err.Error(), "unknown policy") {
		t.Fatalf("error message: %v", err)
	}
}
