// Command agilepm runs one power-aware management scenario and prints
// the outcome: energy, SLA, action counts and (optionally) the power
// and demand time series as CSV for plotting.
//
// Usage:
//
//	agilepm -hosts 32 -vms 160 -workload mixed -policy dpm-s3 -horizon 24h
//	agilepm -policy all -workload diurnal            # compare the full set
//	agilepm -policy dpm-s3 -csv series.csv           # dump series
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"agilepower"
	"agilepower/internal/report"
)

func main() {
	hosts := flag.Int("hosts", 16, "number of hosts")
	vms := flag.Int("vms", 80, "number of VMs")
	workloadKind := flag.String("workload", "mixed", "workload: diurnal, spiky, batch, mixed, flat")
	flatDemand := flag.Float64("flat-demand", 1.0, "per-VM demand in cores for -workload flat")
	policyName := flag.String("policy", "dpm-s3", "policy: static, nopm-drm, dpm-s5, dpm-s3, or all")
	horizon := flag.Duration("horizon", 24*time.Hour, "simulated duration")
	period := flag.Duration("period", 5*time.Minute, "control loop period")
	targetUtil := flag.Float64("target-util", 0.70, "packing headroom target")
	spare := flag.Int("spare", 0, "spare hosts kept awake")
	seed := flag.Uint64("seed", 1, "workload seed")
	csvPath := flag.String("csv", "", "write power/demand/active-host series CSV to this path")
	profilePath := flag.String("profile", "", "server power profile JSON (see cmd/calibrate); default built-in calibration")
	predictive := flag.Bool("predictive", false, "enable time-of-day predictive wake")
	configPath := flag.String("config", "", "scenario file JSON (overrides fleet/host/manager flags)")
	flag.Parse()

	var sc agilepower.Scenario
	if *configPath != "" {
		data, err := os.ReadFile(*configPath)
		if err != nil {
			fatal(err)
		}
		sc, err = agilepower.ParseScenario(data)
		if err != nil {
			fatal(err)
		}
	} else {
		fleet, err := buildFleet(*workloadKind, *vms, *flatDemand, *seed)
		if err != nil {
			fatal(err)
		}
		var profile *agilepower.Profile
		if *profilePath != "" {
			data, err := os.ReadFile(*profilePath)
			if err != nil {
				fatal(err)
			}
			profile = &agilepower.Profile{}
			if err := json.Unmarshal(data, profile); err != nil {
				fatal(err)
			}
		}
		sc = agilepower.Scenario{
			Name:    fmt.Sprintf("%s-%dh-%dv", *workloadKind, *hosts, *vms),
			Hosts:   *hosts,
			Profile: profile,
			VMs:     fleet,
			Horizon: *horizon,
			Seed:    *seed,
			Manager: agilepower.ManagerConfig{
				Period:         *period,
				TargetUtil:     *targetUtil,
				SpareHosts:     *spare,
				PredictiveWake: *predictive,
			},
		}
	}

	policies, err := selectPolicies(*policyName)
	if err != nil {
		fatal(err)
	}
	results, err := sc.RunPolicies(policies)
	if err != nil {
		fatal(err)
	}

	tbl := report.NewTable(
		fmt.Sprintf("scenario %s", sc.Name),
		"policy", "energy_kwh", "mean_w", "satisfaction", "violation_frac",
		"migrations", "sleeps", "wakes")
	for _, r := range results {
		tbl.AddRow(r.Policy, r.EnergyKWh(), r.MeanPowerW, r.Satisfaction,
			r.ViolationFraction, r.Migrations.Completed, r.Sleeps, r.Wakes)
	}
	if err := tbl.Write(os.Stdout); err != nil {
		fatal(err)
	}
	if base := results[0]; len(results) > 1 {
		for _, r := range results[1:] {
			fmt.Printf("%s saves %.1f%% vs %s\n", r.Policy, 100*r.SavingsVs(base), base.Policy)
		}
	}
	if oracleE, err := results[len(results)-1].OracleEnergy(); err == nil {
		fmt.Printf("oracle (zero-latency DPM) bound: %.2f kWh\n", oracleE.KWh())
	}

	if *csvPath != "" {
		f, err := os.Create(*csvPath)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		last := results[len(results)-1]
		if err := report.MultiSeriesCSV(f, last.Demand, last.Power, last.Delivered, last.ActiveHosts); err != nil {
			fatal(err)
		}
		fmt.Printf("series for %s written to %s\n", last.Policy, *csvPath)
	}

	// Scenario files can carry assertions; a run that finished with
	// failed assertions or VMs stranded on crashed hosts is unhealthy
	// and must not exit 0 (scripts and CI rely on the code).
	failures, stranded := 0, 0
	for _, r := range results {
		for _, ar := range r.Assertions {
			fmt.Printf("%s  %s\n", r.Policy, ar)
		}
		failures += r.AssertionFailures
		stranded += r.StrandedVMs
	}
	if failures > 0 || stranded > 0 {
		fmt.Fprintf(os.Stderr, "agilepm: scenario %s unhealthy: %d failed assertion(s), %d stranded VM(s)\n",
			sc.Name, failures, stranded)
		os.Exit(2)
	}
}

func buildFleet(kind string, n int, flatDemand float64, seed uint64) ([]agilepower.VMSpec, error) {
	switch kind {
	case "diurnal":
		return agilepower.DiurnalFleet(n, seed), nil
	case "spiky":
		return agilepower.SpikyFleet(n, 4, seed), nil
	case "batch":
		return agilepower.BatchFleet(n, seed), nil
	case "mixed":
		return agilepower.MixedFleet(n, seed), nil
	case "flat":
		return agilepower.ConstantFleet(n, flatDemand), nil
	default:
		return nil, fmt.Errorf("unknown workload %q (want diurnal, spiky, batch, mixed, flat)", kind)
	}
}

func selectPolicies(name string) ([]agilepower.Policy, error) {
	if name == "all" {
		return agilepower.Policies(), nil
	}
	for _, p := range agilepower.Policies() {
		if strings.EqualFold(p.Name, name) {
			return []agilepower.Policy{p}, nil
		}
	}
	return nil, fmt.Errorf("unknown policy %q (want static, nopm-drm, dpm-s5, dpm-s3, all)", name)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "agilepm:", err)
	os.Exit(1)
}
