// Command scenario validates and runs declarative scenario files —
// the JSON DSL with event scripts, assertions, and chaos patterns.
//
// Usage:
//
//	scenario validate scenarios/*.json      # parse + static checks, no run
//	scenario run scenarios/az-outage.json   # execute, print report + verdicts
//	scenario run -policy all file.json      # compare the full policy set
//
// Exit codes: 0 on success, 1 on usage/parse/run errors, 2 when the
// run finished but an assertion failed or VMs ended stranded — so a
// scenario file doubles as a deterministic integration test in CI.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"agilepower"
	"agilepower/internal/report"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(1)
	}
	switch os.Args[1] {
	case "validate":
		os.Exit(cmdValidate(os.Args[2:]))
	case "run":
		os.Exit(cmdRun(os.Args[2:]))
	case "-h", "--help", "help":
		usage()
	default:
		fmt.Fprintf(os.Stderr, "scenario: unknown subcommand %q\n\n", os.Args[1])
		usage()
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprint(os.Stderr, `usage:
  scenario validate <file.json>...   parse + static checks, no run
  scenario run [flags] <file.json>   execute and print report + assertion verdicts

run flags:
  -policy name   override the file's policy (static, nopm-drm, dpm-s5, dpm-s3, all)
  -horizon d     override the file's horizon (e.g. 6h)
  -quick         cap the horizon at 6h (CI smoke mode)
`)
}

// cmdValidate parses every file and reports per-file verdicts. Any
// failure makes the whole invocation exit 1.
func cmdValidate(args []string) int {
	if len(args) == 0 {
		fmt.Fprintln(os.Stderr, "scenario validate: no files given")
		return 1
	}
	bad := 0
	for _, path := range args {
		data, err := os.ReadFile(path)
		if err != nil {
			fmt.Printf("FAIL %s: %v\n", path, err)
			bad++
			continue
		}
		sc, err := agilepower.ParseScenario(data)
		if err != nil {
			fmt.Printf("FAIL %s: %v\n", path, err)
			bad++
			continue
		}
		fmt.Printf("ok   %s (%d hosts, %d vms, %d events, %d asserts)\n",
			path, scHosts(sc), len(sc.VMs), len(sc.Script), len(sc.Asserts))
	}
	if bad > 0 {
		fmt.Fprintf(os.Stderr, "scenario: %d of %d files failed validation\n", bad, len(args))
		return 1
	}
	return 0
}

func scHosts(sc agilepower.Scenario) int {
	if len(sc.HostClasses) == 0 {
		return sc.Hosts
	}
	n := 0
	for _, hc := range sc.HostClasses {
		n += hc.Count
	}
	return n
}

// cmdRun executes the scenario and prints the standard report plus one
// verdict line per assertion. Exit 2 on failed assertions or stranded
// VMs; exit 1 on errors.
func cmdRun(args []string) int {
	fs := flag.NewFlagSet("scenario run", flag.ContinueOnError)
	policyName := fs.String("policy", "", "override the file's policy (or 'all')")
	horizon := fs.Duration("horizon", 0, "override the file's horizon")
	quick := fs.Bool("quick", false, "cap the horizon at 6h (CI smoke mode)")
	if err := fs.Parse(args); err != nil {
		return 1
	}
	if fs.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "scenario run: exactly one file expected")
		return 1
	}
	path := fs.Arg(0)
	data, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "scenario:", err)
		return 1
	}
	sc, err := agilepower.ParseScenario(data)
	if err != nil {
		fmt.Fprintln(os.Stderr, "scenario:", err)
		return 1
	}
	if *horizon > 0 {
		sc.Horizon = *horizon
	}
	if *quick && (sc.Horizon == 0 || sc.Horizon > 6*time.Hour) {
		sc.Horizon = 6 * time.Hour
	}
	policies, err := selectPolicies(sc, *policyName)
	if err != nil {
		fmt.Fprintln(os.Stderr, "scenario:", err)
		return 1
	}
	results, err := sc.RunPolicies(policies)
	if err != nil {
		fmt.Fprintln(os.Stderr, "scenario:", err)
		return 1
	}

	tbl := report.NewTable(
		fmt.Sprintf("scenario %s (%s)", sc.Name, path),
		"policy", "energy_kwh", "mean_w", "satisfaction", "violation_frac",
		"migrations", "sleeps", "wakes", "crashes", "stranded")
	for _, r := range results {
		tbl.AddRow(r.Policy, r.EnergyKWh(), r.MeanPowerW, r.Satisfaction,
			r.ViolationFraction, r.Migrations.Completed, r.Sleeps, r.Wakes,
			r.Crashes, r.StrandedVMs)
	}
	if err := tbl.Write(os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "scenario:", err)
		return 1
	}

	failures, stranded := 0, 0
	for _, r := range results {
		for _, ar := range r.Assertions {
			fmt.Printf("%s  %s\n", r.Policy, ar)
		}
		failures += r.AssertionFailures
		stranded += r.StrandedVMs
	}
	if failures > 0 || stranded > 0 {
		fmt.Fprintf(os.Stderr, "scenario: %s unhealthy: %d failed assertion(s), %d stranded VM(s)\n",
			path, failures, stranded)
		return 2
	}
	return 0
}

func selectPolicies(sc agilepower.Scenario, name string) ([]agilepower.Policy, error) {
	if name == "" {
		// The file's policy (already materialized into the scenario);
		// files without one get the paper's headline policy.
		p := sc.Manager.Policy
		if p.Name == "" {
			p = agilepower.DPMS3
		}
		return []agilepower.Policy{p}, nil
	}
	if name == "all" {
		return agilepower.Policies(), nil
	}
	for _, p := range agilepower.Policies() {
		if strings.EqualFold(p.Name, name) {
			return []agilepower.Policy{p}, nil
		}
	}
	return nil, fmt.Errorf("unknown policy %q (want static, nopm-drm, dpm-s5, dpm-s3, all)", name)
}
