// Command agilepmd serves the simulator over HTTP: a control plane for
// submitting scenario runs and regenerating experiments without
// linking the library.
//
//	agilepmd -addr :8080
//	curl -s localhost:8080/api/profile
//	curl -s -X POST localhost:8080/api/runs -d '{"hosts":16,"vms":80,"fleet":"mixed","policy":"dpm-s3"}'
//	curl -s localhost:8080/api/runs/1/series?step=30m
//	curl -s -X POST localhost:8080/api/experiments/f6
//
// SIGINT/SIGTERM drain in-flight requests for up to -grace before the
// process exits.
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net/http"
	"os/signal"
	"syscall"
	"time"

	"agilepower/internal/api"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	grace := flag.Duration("grace", 10*time.Second, "shutdown grace period for in-flight requests")
	flag.Parse()

	srv := &http.Server{
		Addr:              *addr,
		Handler:           logRequests(api.NewServer().Handler()),
		ReadHeaderTimeout: 10 * time.Second,
		// Experiment regeneration can take a while; these bound a stuck
		// client, not a long simulation.
		WriteTimeout: 5 * time.Minute,
		IdleTimeout:  2 * time.Minute,
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() {
		log.Printf("agilepmd listening on %s", *addr)
		errc <- srv.ListenAndServe()
	}()

	select {
	case err := <-errc:
		// The listener failed before any signal arrived.
		log.Fatal(err)
	case <-ctx.Done():
	}
	stop() // restore default signal handling: a second ^C kills immediately
	log.Printf("agilepmd shutting down (grace %v)", *grace)

	shutdownCtx, cancel := context.WithTimeout(context.Background(), *grace)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil {
		log.Printf("agilepmd forced shutdown: %v", err)
		srv.Close()
	}
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Fatal(err)
	}
	log.Print("agilepmd stopped")
}

func logRequests(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		next.ServeHTTP(w, r)
		log.Printf("%s %s (%v)", r.Method, r.URL.Path, time.Since(start).Round(time.Millisecond))
	})
}
