// Command agilepmd serves the simulator over HTTP: the multi-tenant
// simulation service — an async job queue with per-tenant fairness,
// a content-addressed result cache, SSE progress streaming, and a
// Prometheus /metrics endpoint — plus the legacy synchronous /api
// control plane.
//
//	agilepmd -addr :8080
//	curl -s localhost:8080/api/profile
//	curl -s -X POST localhost:8080/v1/runs -d '{"hosts":16,"vms":80,"fleet":"mixed","policy":"dpm-s3"}'
//	curl -s localhost:8080/v1/jobs/j1
//	curl -s -X POST 'localhost:8080/v1/runs?wait=1' -d '{"hosts":16,"vms":80,"fleet":"mixed"}'
//	curl -s localhost:8080/metrics
//
// SIGINT/SIGTERM drain gracefully: new submissions are rejected with
// 503, queued jobs are cancelled, and running jobs get up to -grace
// to finish before their contexts are cancelled. With -state, the
// terminal job ledger is persisted on exit for post-mortems.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"agilepower/internal/api"
	"agilepower/internal/jobs"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	grace := flag.Duration("grace", 10*time.Second, "shutdown grace period for running jobs and in-flight requests")
	workers := flag.Int("workers", 0, "job executor pool size (0 = GOMAXPROCS)")
	queueDepth := flag.Int("queue-depth", 0, "max queued jobs across all tenants (0 = 4096)")
	tenantDepth := flag.Int("tenant-queue-depth", 0, "max queued jobs per tenant (0 = queue-depth)")
	cacheMB := flag.Int64("cache-mb", 0, "result cache budget in MiB (0 = 256)")
	maxHosts := flag.Int("max-hosts", 0, "per-request host budget (0 = 131072)")
	maxVMs := flag.Int("max-vms", 0, "per-request VM budget (0 = 1048576)")
	state := flag.String("state", "", "file to persist terminal job states to on shutdown")
	flag.Parse()

	server := api.NewServer(api.Config{
		Workers:          *workers,
		QueueDepth:       *queueDepth,
		TenantQueueDepth: *tenantDepth,
		CacheBytes:       *cacheMB << 20,
		MaxHosts:         *maxHosts,
		MaxVMs:           *maxVMs,
	})
	srv := &http.Server{
		Addr:              *addr,
		Handler:           logRequests(server.Handler()),
		ReadHeaderTimeout: 10 * time.Second,
		// Experiment regeneration and wait=1 submissions can take a
		// while; these bound a stuck client, not a long simulation.
		WriteTimeout: 5 * time.Minute,
		IdleTimeout:  2 * time.Minute,
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() {
		log.Printf("agilepmd listening on %s", *addr)
		errc <- srv.ListenAndServe()
	}()

	select {
	case err := <-errc:
		// The listener failed before any signal arrived.
		log.Fatal(err)
	case <-ctx.Done():
	}
	stop() // restore default signal handling: a second ^C kills immediately
	log.Printf("agilepmd shutting down (grace %v)", *grace)

	shutdownCtx, cancel := context.WithTimeout(context.Background(), *grace)
	defer cancel()
	// Drain the job queue first: submissions start failing with 503,
	// queued jobs are cancelled, and running jobs get the grace period
	// to finish — which also settles any wait=1 handlers blocked on
	// them, so the HTTP shutdown below finds quiet connections.
	if err := server.Drain(shutdownCtx); err != nil {
		log.Printf("agilepmd drain: %v", err)
	}
	if err := srv.Shutdown(shutdownCtx); err != nil {
		log.Printf("agilepmd forced shutdown: %v", err)
		srv.Close()
	}
	if *state != "" {
		if err := persistState(*state, server.Queue()); err != nil {
			log.Printf("agilepmd state: %v", err)
		} else {
			log.Printf("agilepmd state written to %s", *state)
		}
	}
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Fatal(err)
	}
	log.Print("agilepmd stopped")
}

// persistState writes every known job's terminal snapshot (after a
// drain all jobs are terminal) plus the lifetime counters, so an
// operator can audit what a stopped daemon had done and cancelled.
func persistState(path string, q *jobs.Queue) error {
	all := q.Jobs("")
	snap := struct {
		StoppedAt string        `json:"stoppedAt"`
		Counters  jobs.Counters `json:"counters"`
		Jobs      []jobs.Status `json:"jobs"`
	}{
		StoppedAt: time.Now().UTC().Format(time.RFC3339),
		Counters:  q.Counters(),
		Jobs:      make([]jobs.Status, 0, len(all)),
	}
	for _, j := range all {
		snap.Jobs = append(snap.Jobs, j.Snapshot())
	}
	data, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

func logRequests(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		next.ServeHTTP(w, r)
		log.Printf("%s %s (%v)", r.Method, r.URL.Path, time.Since(start).Round(time.Millisecond))
	})
}
