// Command agilepmd serves the simulator over HTTP: a control plane for
// submitting scenario runs and regenerating experiments without
// linking the library.
//
//	agilepmd -addr :8080
//	curl -s localhost:8080/api/profile
//	curl -s -X POST localhost:8080/api/runs -d '{"hosts":16,"vms":80,"fleet":"mixed","policy":"dpm-s3"}'
//	curl -s localhost:8080/api/runs/1/series?step=30m
//	curl -s -X POST localhost:8080/api/experiments/f6
package main

import (
	"flag"
	"log"
	"net/http"
	"time"

	"agilepower/internal/api"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	flag.Parse()

	srv := &http.Server{
		Addr:              *addr,
		Handler:           logRequests(api.NewServer().Handler()),
		ReadHeaderTimeout: 10 * time.Second,
	}
	log.Printf("agilepmd listening on %s", *addr)
	if err := srv.ListenAndServe(); err != nil {
		log.Fatal(err)
	}
}

func logRequests(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		next.ServeHTTP(w, r)
		log.Printf("%s %s (%v)", r.Method, r.URL.Path, time.Since(start).Round(time.Millisecond))
	})
}
