// Command powerbench characterizes server power states: the prototype
// measurements of the paper's first half (T1 table, F2 suspend/resume
// trace, F3 break-even analysis), driven against the calibrated state
// machine. Calibration parameters can be overridden to explore other
// platforms.
//
// Usage:
//
//	powerbench                          # T1 + F2 + F3 with defaults
//	powerbench -exp f3 -s3-exit 30s     # break-even with a slower S3
package main

import (
	"bytes"
	"context"
	"flag"
	"fmt"
	"os"
	"time"

	"agilepower"
	"agilepower/internal/experiments"
	"agilepower/internal/parallel"
	"agilepower/internal/power"
	"agilepower/internal/prof"
)

func main() {
	exp := flag.String("exp", "all", "t1, f2, f3 or all")
	seed := flag.Uint64("seed", 1, "simulation seed")
	workers := flag.Int("parallel", 0, "max concurrent experiments (0 = GOMAXPROCS, 1 = sequential); output is identical for every value")
	peak := flag.Float64("peak-w", 250, "S0 peak power (W)")
	idle := flag.Float64("idle-w", 150, "S0 idle power (W)")
	deepIdle := flag.Float64("deepidle-w", 120, "C6 deep-idle power (W), 0 to disable")
	s3Power := flag.Float64("s3-w", 12, "S3 power (W)")
	s3Entry := flag.Duration("s3-entry", 8*time.Second, "S3 entry latency")
	s3Exit := flag.Duration("s3-exit", 15*time.Second, "S3 exit latency")
	s5Power := flag.Float64("s5-w", 4, "S5 power (W)")
	s5Entry := flag.Duration("s5-entry", 45*time.Second, "S5 entry latency")
	s5Exit := flag.Duration("s5-exit", 190*time.Second, "S5 exit latency")
	ctrlDelay := flag.Duration("ctrlplane-delay", 0, "mean one-way management-network delay for the ctrl experiment (0 with zero loss = no control plane)")
	ctrlLoss := flag.Float64("ctrlplane-loss", 0, "per-leg management-network loss probability in [0,1]")
	shards := flag.Int("shards", 0, "shard each simulation's evaluation tick across this many host ranges (0/1 = serial); output is identical for every value")
	evalWorkers := flag.Int("eval-workers", 0, "goroutines serving evaluation shards (0 = min(shards, GOMAXPROCS))")
	delta := flag.String("delta", "", "evaluation mode: 'on' forces event-driven delta evaluation, 'off' forces the full scan, empty lets each experiment choose; output is identical in either mode")
	incremental := flag.String("incremental", "", "manager planning mode: 'on' maintains planning inputs incrementally (the default), 'off' rebuilds by full scan each control step; output is identical in either mode")
	telemetryCap := flag.Int("telemetry-cap", 0, "bound each recorded time series to this many stored samples (0 = experiment default)")
	coldWorld := flag.Bool("cold-world", false, "rebuild each grid cell's fleet from scratch instead of forking a shared snapshot; output is identical either way")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memProfile := flag.String("memprofile", "", "write a heap profile to this file on exit")
	tracePath := flag.String("trace", "", "write a runtime execution trace to this file (inspect with `go tool trace`)")
	flag.Parse()

	stopProf, err := prof.Start(*cpuProfile, *memProfile, *tracePath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "powerbench:", err)
		os.Exit(1)
	}

	profile := power.DefaultProfile()
	profile.PeakPower = power.Watts(*peak)
	profile.IdlePower = power.Watts(*idle)
	profile.DeepIdlePower = power.Watts(*deepIdle)
	s3 := profile.Sleep[power.S3]
	s3.Power = power.Watts(*s3Power)
	s3.EntryLatency = *s3Entry
	s3.ExitLatency = *s3Exit
	profile.Sleep[power.S3] = s3
	s5 := profile.Sleep[power.S5]
	s5.Power = power.Watts(*s5Power)
	s5.EntryLatency = *s5Entry
	s5.ExitLatency = *s5Exit
	profile.Sleep[power.S5] = s5
	if err := profile.Validate(); err != nil {
		fmt.Fprintln(os.Stderr, "powerbench: invalid calibration:", err)
		os.Exit(1)
	}

	var deltaMode experiments.DeltaMode
	switch *delta {
	case "":
		deltaMode = experiments.DeltaDefault
	case "on":
		deltaMode = experiments.DeltaOn
	case "off":
		deltaMode = experiments.DeltaOff
	default:
		fmt.Fprintf(os.Stderr, "powerbench: invalid -delta %q (want on, off, or empty)\n", *delta)
		os.Exit(1)
	}
	var incMode agilepower.IncrementalMode
	switch *incremental {
	case "":
		incMode = agilepower.IncrementalDefault
	case "on":
		incMode = agilepower.IncrementalOn
	case "off":
		incMode = agilepower.IncrementalOff
	default:
		fmt.Fprintf(os.Stderr, "powerbench: invalid -incremental %q (want on, off, or empty)\n", *incremental)
		os.Exit(1)
	}
	opts := experiments.Options{
		Seed: *seed, Profile: profile, Workers: *workers,
		CtrlDelay: *ctrlDelay, CtrlLoss: *ctrlLoss,
		Shards: *shards, EvalWorkers: *evalWorkers,
		Delta: deltaMode, Incremental: incMode, TelemetryCap: *telemetryCap,
		ColdWorld: *coldWorld,
	}
	ids := []string{"t1", "f2", "f3"}
	if *exp != "all" {
		ids = []string{*exp}
	}
	for _, id := range ids {
		switch id {
		// ctrl is the cluster-under-imperfect-control-plane grid — the
		// counterpart characterization for the management network; the
		// -ctrlplane-* flags add an extra row to its delay×loss grid.
		// scale is the datacenter-size run the -shards flag exists for;
		// hyper is the 100k-host delta-evaluation run the -delta and
		// -telemetry-cap flags exist for.
		case "t1", "f2", "f3", "ctrl", "scale", "hyper":
		default:
			fmt.Fprintf(os.Stderr, "powerbench: unknown experiment %q (want t1, f2, f3, ctrl, scale, hyper)\n", id)
			os.Exit(1)
		}
	}
	// Each experiment renders into its own buffer; stitching in id
	// order keeps stdout identical for every worker count.
	bufs, err := parallel.Map(context.Background(), len(ids), *workers,
		func(_ context.Context, i int) (*bytes.Buffer, error) {
			var buf bytes.Buffer
			fmt.Fprintf(&buf, "\n=== %s ===\n", ids[i])
			if err := experiments.Run(ids[i], &buf, opts); err != nil {
				return nil, err
			}
			return &buf, nil
		})
	if err != nil {
		fmt.Fprintln(os.Stderr, "powerbench:", err)
		os.Exit(1)
	}
	for _, buf := range bufs {
		os.Stdout.Write(buf.Bytes())
	}
	if err := stopProf(); err != nil {
		fmt.Fprintln(os.Stderr, "powerbench:", err)
		os.Exit(1)
	}
}
