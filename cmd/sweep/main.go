// Command sweep regenerates the paper's evaluation: every table and
// figure (T1, F2–F10, T2) plus the design-choice ablations.
//
// Usage:
//
//	sweep -exp all            # full reproduction (paper-scale)
//	sweep -exp f5 -quick      # one experiment, small/fast mode
//	sweep -list               # list experiment IDs
package main

import (
	"flag"
	"fmt"
	"os"

	"agilepower"
	"agilepower/internal/experiments"
	"agilepower/internal/prof"
)

func main() {
	exp := flag.String("exp", "all", "experiment id (see -list) or 'all'")
	quick := flag.Bool("quick", false, "shrink horizons and fleets for a fast run")
	seed := flag.Uint64("seed", 1, "workload generation seed")
	svgDir := flag.String("svg", "", "also write SVG figures into this directory")
	parallel := flag.Int("parallel", 0, "max concurrent simulations (0 = GOMAXPROCS, 1 = sequential); output is identical for every value")
	ctrlDelay := flag.Duration("ctrlplane-delay", 0, "mean one-way management-network delay for cluster experiments (0 with zero loss = no control plane)")
	ctrlLoss := flag.Float64("ctrlplane-loss", 0, "per-leg management-network loss probability in [0,1]")
	shards := flag.Int("shards", 0, "shard each simulation's evaluation tick across this many host ranges (0/1 = serial); output is identical for every value")
	evalWorkers := flag.Int("eval-workers", 0, "goroutines serving evaluation shards (0 = min(shards, GOMAXPROCS))")
	delta := flag.String("delta", "", "evaluation mode: 'on' forces event-driven delta evaluation, 'off' forces the full scan, empty lets each experiment choose; output is identical in either mode")
	incremental := flag.String("incremental", "", "manager planning mode: 'on' maintains planning inputs incrementally (the default), 'off' rebuilds by full scan each control step; output is identical in either mode")
	telemetryCap := flag.Int("telemetry-cap", 0, "bound each recorded time series to this many stored samples (0 = experiment default)")
	coldWorld := flag.Bool("cold-world", false, "rebuild each grid cell's fleet from scratch instead of forking a shared snapshot; output is identical either way")
	list := flag.Bool("list", false, "list experiment ids and exit")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memProfile := flag.String("memprofile", "", "write a heap profile to this file on exit")
	tracePath := flag.String("trace", "", "write a runtime execution trace to this file (inspect with `go tool trace`)")
	flag.Parse()

	if *list {
		for _, id := range experiments.IDs() {
			fmt.Println(id)
		}
		return
	}
	if *svgDir != "" {
		if err := os.MkdirAll(*svgDir, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, "sweep:", err)
			os.Exit(1)
		}
	}
	stopProf, err := prof.Start(*cpuProfile, *memProfile, *tracePath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "sweep:", err)
		os.Exit(1)
	}
	deltaMode, err := parseDeltaMode(*delta)
	if err != nil {
		fmt.Fprintln(os.Stderr, "sweep:", err)
		os.Exit(1)
	}
	incMode, err := parseIncrementalMode(*incremental)
	if err != nil {
		fmt.Fprintln(os.Stderr, "sweep:", err)
		os.Exit(1)
	}
	health := &experiments.Health{}
	opts := experiments.Options{
		Quick: *quick, Seed: *seed, SVGDir: *svgDir, Workers: *parallel,
		CtrlDelay: *ctrlDelay, CtrlLoss: *ctrlLoss,
		Shards: *shards, EvalWorkers: *evalWorkers,
		Delta: deltaMode, Incremental: incMode, TelemetryCap: *telemetryCap,
		ColdWorld: *coldWorld, Health: health,
	}
	if *exp == "all" {
		// Long runs stay observable: per-experiment wall times go to
		// stderr while the stitched report goes to stdout.
		opts.Progress = os.Stderr
		err = experiments.RunAll(os.Stdout, opts)
	} else {
		err = experiments.Run(*exp, os.Stdout, opts)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "sweep:", err)
		os.Exit(1)
	}
	if err := stopProf(); err != nil {
		fmt.Fprintln(os.Stderr, "sweep:", err)
		os.Exit(1)
	}
	if health.Unhealthy() {
		fmt.Fprintln(os.Stderr, "sweep:", health.Summary())
		os.Exit(3)
	}
}

// parseDeltaMode maps the -delta flag onto the tri-state Options knob.
func parseDeltaMode(s string) (experiments.DeltaMode, error) {
	switch s {
	case "":
		return experiments.DeltaDefault, nil
	case "on":
		return experiments.DeltaOn, nil
	case "off":
		return experiments.DeltaOff, nil
	default:
		return 0, fmt.Errorf("invalid -delta %q (want on, off, or empty)", s)
	}
}

// parseIncrementalMode maps the -incremental flag onto the manager's
// tri-state planning-mode knob.
func parseIncrementalMode(s string) (agilepower.IncrementalMode, error) {
	switch s {
	case "":
		return agilepower.IncrementalDefault, nil
	case "on":
		return agilepower.IncrementalOn, nil
	case "off":
		return agilepower.IncrementalOff, nil
	default:
		return 0, fmt.Errorf("invalid -incremental %q (want on, off, or empty)", s)
	}
}
