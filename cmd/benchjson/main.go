// Command benchjson converts `go test -bench` output into a JSON
// benchmark artifact so performance has a recorded trajectory across
// PRs. It reads the bench output on stdin, aggregates the -count
// repetitions per benchmark (min and mean ns/op; min B/op and
// allocs/op, which are stable across runs), and appends one labelled
// run to the artifact:
//
//	go test -run '^$' -bench=. -benchmem -count=3 . |
//	    go run ./cmd/benchjson -label parallel -out BENCH_parallel.json
//
// The artifact accumulates runs, so a later PR can diff its numbers
// against any recorded baseline (see Makefile target bench-baseline).
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"runtime"
	"strconv"
	"time"
)

// Bench is one benchmark aggregated over its -count repetitions.
type Bench struct {
	Name       string  `json:"name"`
	Samples    int     `json:"samples"`
	NsOpMin    float64 `json:"ns_op_min"`
	NsOpMean   float64 `json:"ns_op_mean"`
	BOp        int64   `json:"b_op,omitempty"`
	AllocsOp   int64   `json:"allocs_op,omitempty"`
	Iterations int64   `json:"iterations"`
}

// Run is one labelled invocation of the benchmark suite.
type Run struct {
	Label      string  `json:"label"`
	RecordedAt string  `json:"recorded_at"`
	GoVersion  string  `json:"go_version"`
	GOMAXPROCS int     `json:"gomaxprocs"`
	NumCPU     int     `json:"num_cpu"`
	Benchmarks []Bench `json:"benchmarks"`
}

// Artifact is the file format: an append-only list of runs.
type Artifact struct {
	Runs []Run `json:"runs"`
}

var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+(\d+)\s+([\d.]+) ns/op(?:\s+(\d+) B/op)?(?:\s+(\d+) allocs/op)?`)

func main() {
	label := flag.String("label", "run", "label for this benchmark run (e.g. sequential-baseline, parallel)")
	out := flag.String("out", "BENCH_parallel.json", "artifact path; existing runs are kept and this run appended")
	flag.Parse()

	type agg struct {
		samples  int
		nsSum    float64
		nsMin    float64
		bOp      int64
		allocsOp int64
		iters    int64
	}
	byName := map[string]*agg{}
	var order []string

	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(sc.Text())
		if m == nil {
			continue
		}
		name := m[1]
		iters, _ := strconv.ParseInt(m[2], 10, 64)
		ns, _ := strconv.ParseFloat(m[3], 64)
		a := byName[name]
		if a == nil {
			a = &agg{nsMin: ns}
			byName[name] = a
			order = append(order, name)
		}
		a.samples++
		a.nsSum += ns
		a.iters += iters
		if ns < a.nsMin {
			a.nsMin = ns
		}
		if m[4] != "" {
			b, _ := strconv.ParseInt(m[4], 10, 64)
			if a.bOp == 0 || b < a.bOp {
				a.bOp = b
			}
		}
		if m[5] != "" {
			al, _ := strconv.ParseInt(m[5], 10, 64)
			if a.allocsOp == 0 || al < a.allocsOp {
				a.allocsOp = al
			}
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson: reading stdin:", err)
		os.Exit(1)
	}
	if len(order) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines found on stdin")
		os.Exit(1)
	}

	run := Run{
		Label:      *label,
		RecordedAt: time.Now().UTC().Format(time.RFC3339),
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
	}
	for _, name := range order {
		a := byName[name]
		run.Benchmarks = append(run.Benchmarks, Bench{
			Name:       name,
			Samples:    a.samples,
			NsOpMin:    a.nsMin,
			NsOpMean:   a.nsSum / float64(a.samples),
			BOp:        a.bOp,
			AllocsOp:   a.allocsOp,
			Iterations: a.iters,
		})
	}

	var art Artifact
	if data, err := os.ReadFile(*out); err == nil {
		if err := json.Unmarshal(data, &art); err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: %s exists but is not a benchmark artifact: %v\n", *out, err)
			os.Exit(1)
		}
	}
	art.Runs = append(art.Runs, run)
	data, err := json.MarshalIndent(art, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "benchjson: recorded run %q (%d benchmarks) into %s\n",
		*label, len(run.Benchmarks), *out)
}
