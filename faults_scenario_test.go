package agilepower

import (
	"testing"
	"time"
)

func faultedScenario(rate float64) Scenario {
	s := Scenario{
		Name:    "faulted",
		Hosts:   6,
		VMs:     MixedFleet(24, 5),
		Horizon: 8 * time.Hour,
		Seed:    5,
		Manager: ManagerConfig{Policy: DPMS3},
	}
	if rate > 0 {
		fc := FaultPreset(rate)
		s.Faults = &fc
	}
	return s
}

// A dormant fault config must be indistinguishable from no config at
// all: the injector is never constructed, so not a single RNG draw or
// event differs.
func TestDormantFaultConfigIdenticalToNil(t *testing.T) {
	plain := faultedScenario(0)
	dormant := faultedScenario(0)
	dormant.Faults = &FaultConfig{}

	a, err := plain.Run()
	if err != nil {
		t.Fatal(err)
	}
	b, err := dormant.Run()
	if err != nil {
		t.Fatal(err)
	}
	if a.Energy != b.Energy || a.Satisfaction != b.Satisfaction ||
		a.ViolationFraction != b.ViolationFraction {
		t.Fatalf("dormant config changed the run: %v/%v vs %v/%v",
			a.Energy, a.Satisfaction, b.Energy, b.Satisfaction)
	}
	if a.Sleeps != b.Sleeps || a.Wakes != b.Wakes ||
		a.Migrations.Completed != b.Migrations.Completed {
		t.Fatal("dormant config changed manager actions")
	}
	if a.Events.Len() != b.Events.Len() {
		t.Fatalf("event logs diverged: %d vs %d", a.Events.Len(), b.Events.Len())
	}
	for i, ea := range a.Events.All() {
		if ea != b.Events.All()[i] {
			t.Fatalf("event %d diverged: %v vs %v", i, ea, b.Events.All()[i])
		}
	}
	// And a fault-free run reports a clean ledger.
	if len(b.FaultCounters) != 0 || b.SuspendFailures != 0 || b.WakeFailures != 0 ||
		b.Crashes != 0 || b.StrandedVMHours != 0 {
		t.Fatalf("fault-free run reports faults: %+v", b.FaultCounters)
	}
}

func TestFaultedScenarioDeterministicAndReported(t *testing.T) {
	sc := faultedScenario(0.3)
	a, err := sc.Run()
	if err != nil {
		t.Fatal(err)
	}
	b, err := sc.Run()
	if err != nil {
		t.Fatal(err)
	}
	// Faults actually landed and surfaced in the Result.
	if a.SuspendFailures+a.WakeFailures == 0 {
		t.Fatal("no transition faults at rate 0.3 over 8h")
	}
	total := 0
	for _, v := range a.FaultCounters {
		total += v
	}
	if total == 0 {
		t.Fatalf("manager counters empty under faults: %+v", a.FaultCounters)
	}
	// The faulted run replays exactly: same injections, same recovery.
	if a.Energy != b.Energy || a.Satisfaction != b.Satisfaction {
		t.Fatalf("faulted run diverged: %v vs %v", a.Energy, b.Energy)
	}
	if a.SuspendFailures != b.SuspendFailures || a.WakeFailures != b.WakeFailures ||
		a.Crashes != b.Crashes || a.StrandedVMHours != b.StrandedVMHours {
		t.Fatal("fault tallies diverged across reruns")
	}
	for name, v := range a.FaultCounters {
		if b.FaultCounters[name] != v {
			t.Fatalf("counter %s diverged: %d vs %d", name, v, b.FaultCounters[name])
		}
	}
	if a.Events.Len() != b.Events.Len() {
		t.Fatalf("event logs diverged: %d vs %d", a.Events.Len(), b.Events.Len())
	}
	for i, ea := range a.Events.All() {
		if ea != b.Events.All()[i] {
			t.Fatalf("event %d diverged: %v vs %v", i, ea, b.Events.All()[i])
		}
	}
}

func TestScenarioValidateRejectsBadFaultConfig(t *testing.T) {
	s := faultedScenario(0)
	s.Faults = &FaultConfig{SuspendFailProb: 1.5}
	if err := s.Validate(); err == nil {
		t.Fatal("accepted out-of-range fault probability")
	}
	s.Faults = &FaultConfig{TransitionSlowMean: -time.Second}
	if err := s.Validate(); err == nil {
		t.Fatal("accepted negative slow-transition mean")
	}
}
