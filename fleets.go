package agilepower

import (
	"fmt"
	"time"

	"agilepower/internal/sim"
	"agilepower/internal/workload"
)

// Fleet builders: ready-made VM populations for the workload classes
// the paper's evaluation draws on. All are deterministic in the seed.

// DiurnalFleet returns n 4-vCPU/8GB VMs driven by enterprise
// day/night demand curves: ~0.4 cores at night rising to ~3 cores at
// midday, with per-VM phase jitter and noise so cluster demand is
// smooth.
func DiurnalFleet(n int, seed uint64) []VMSpec {
	rng := sim.NewRNG(seed)
	out := make([]VMSpec, n)
	for i := range out {
		tr := workload.Diurnal(rng.Fork(), workload.DiurnalSpec{
			BaseCores:   0.4,
			PeakCores:   3.0,
			NoiseFrac:   0.08,
			PhaseJitter: 90 * time.Minute,
		})
		out[i] = VMSpec{
			Name:     fmt.Sprintf("web-%03d", i),
			VCPUs:    4,
			MemoryGB: 8,
			Trace:    tr,
		}
	}
	return out
}

// SpikyFleet returns n VMs with low steady demand punctuated by
// correlated flash-crowd spikes to full vCPU load: the whole tier
// surges within a couple of minutes, the arrival pattern that punishes
// slow wake-up. Spike onset times are shared across the fleet (with
// ±2 minutes of per-VM jitter).
func SpikyFleet(n, spikes int, seed uint64) []VMSpec {
	rng := sim.NewRNG(seed)
	// One shared flash-crowd schedule for the whole tier.
	starts := make([]time.Duration, spikes)
	for i := range starts {
		starts[i] = time.Duration(rng.Float64() * float64(24*time.Hour))
	}
	out := make([]VMSpec, n)
	for i := range out {
		tr := workload.Spiky(rng.Fork(), workload.SpikeSpec{
			BaseCores:   0.3,
			SpikeCores:  4,
			SpikeLen:    15 * time.Minute,
			Starts:      starts,
			StartJitter: 2 * time.Minute,
		})
		out[i] = VMSpec{
			Name:     fmt.Sprintf("api-%03d", i),
			VCPUs:    4,
			MemoryGB: 8,
			Trace:    tr,
		}
	}
	return out
}

// SpikyFleetAt returns n flash-crowd VMs whose spikes hit at the given
// times (±2 minutes of per-VM jitter) — the controlled surge used by
// the spike-response experiments.
func SpikyFleetAt(n int, starts []time.Duration, seed uint64) []VMSpec {
	rng := sim.NewRNG(seed)
	out := make([]VMSpec, n)
	for i := range out {
		tr := workload.Spiky(rng.Fork(), workload.SpikeSpec{
			BaseCores:   0.3,
			SpikeCores:  4,
			SpikeLen:    15 * time.Minute,
			Starts:      starts,
			StartJitter: 2 * time.Minute,
		})
		out[i] = VMSpec{
			Name:     fmt.Sprintf("api-%03d", i),
			VCPUs:    4,
			MemoryGB: 8,
			Trace:    tr,
		}
	}
	return out
}

// BatchFleet returns n VMs running periodic batch jobs: near idle
// between runs, full load during them.
func BatchFleet(n int, seed uint64) []VMSpec {
	rng := sim.NewRNG(seed)
	out := make([]VMSpec, n)
	for i := range out {
		tr := workload.Batch(rng.Fork(), workload.BatchSpec{
			IdleCores: 0.1,
			RunCores:  4,
			Period:    6 * time.Hour,
			RunLen:    time.Hour,
		})
		out[i] = VMSpec{
			Name:     fmt.Sprintf("batch-%03d", i),
			VCPUs:    4,
			MemoryGB: 12,
			Trace:    tr,
		}
	}
	return out
}

// WorkdayFleet returns n business-day VMs whose demand jumps from 0.4
// to 3 cores within ~2 minutes of 9:00 and drops at 18:00, every day
// for the given number of days — the steep recurring ramp where
// predictive wake matters.
func WorkdayFleet(n, days int, seed uint64) []VMSpec {
	rng := sim.NewRNG(seed)
	out := make([]VMSpec, n)
	for i := range out {
		tr := workload.Workday(rng.Fork(), workload.WorkdaySpec{
			Days:       days,
			LowCores:   0.4,
			HighCores:  3,
			OpenJitter: 2 * time.Minute,
			NoiseFrac:  0.05,
		})
		out[i] = VMSpec{
			Name:     fmt.Sprintf("desk-%03d", i),
			VCPUs:    4,
			MemoryGB: 8,
			Trace:    tr,
		}
	}
	return out
}

// MixedFleet returns a realistic enterprise mix: 60% diurnal web VMs,
// 25% spiky API VMs, 15% batch VMs.
func MixedFleet(n int, seed uint64) []VMSpec {
	nWeb := n * 60 / 100
	nAPI := n * 25 / 100
	nBatch := n - nWeb - nAPI
	out := make([]VMSpec, 0, n)
	out = append(out, DiurnalFleet(nWeb, seed)...)
	out = append(out, SpikyFleet(nAPI, 4, seed+1)...)
	out = append(out, BatchFleet(nBatch, seed+2)...)
	return out
}

// ReplicatedFleet returns services×replicas diurnal VMs where the
// replicas of each service form an anti-affinity group (never
// co-located). Availability constraints like these put a floor under
// the number of active hosts and cap what consolidation can save.
func ReplicatedFleet(services, replicas int, seed uint64) []VMSpec {
	rng := sim.NewRNG(seed)
	out := make([]VMSpec, 0, services*replicas)
	for svc := 0; svc < services; svc++ {
		group := fmt.Sprintf("svc-%03d", svc)
		for r := 0; r < replicas; r++ {
			tr := workload.Diurnal(rng.Fork(), workload.DiurnalSpec{
				BaseCores:   0.4,
				PeakCores:   3.0,
				NoiseFrac:   0.08,
				PhaseJitter: 90 * time.Minute,
			})
			out = append(out, VMSpec{
				Name:     fmt.Sprintf("%s-r%d", group, r),
				VCPUs:    4,
				MemoryGB: 8,
				Trace:    tr,
				Group:    group,
			})
		}
	}
	return out
}

// ConstantFleet returns n VMs each demanding a flat demand in cores —
// the building block of steady-load sweeps (figure F4).
func ConstantFleet(n int, demand float64) []VMSpec {
	out := make([]VMSpec, n)
	for i := range out {
		out[i] = VMSpec{
			Name:     fmt.Sprintf("flat-%03d", i),
			VCPUs:    4,
			MemoryGB: 8,
			Trace:    workload.Constant(demand),
		}
	}
	return out
}

// GenerateDiurnal exposes the diurnal trace generator for custom
// fleets.
func GenerateDiurnal(seed uint64, base, peak float64, noiseFrac float64, jitter time.Duration) *Trace {
	return workload.Diurnal(sim.NewRNG(seed), workload.DiurnalSpec{
		BaseCores:   base,
		PeakCores:   peak,
		NoiseFrac:   noiseFrac,
		PhaseJitter: jitter,
	})
}

// GenerateSpiky exposes the flash-crowd trace generator for custom
// fleets.
func GenerateSpiky(seed uint64, base, spike float64, spikes int, spikeLen time.Duration) *Trace {
	return workload.Spiky(sim.NewRNG(seed), workload.SpikeSpec{
		BaseCores:  base,
		SpikeCores: spike,
		Spikes:     spikes,
		SpikeLen:   spikeLen,
	})
}

// ConstantTrace exposes the constant trace constructor.
func ConstantTrace(demand float64) *Trace { return workload.Constant(demand) }
