package agilepower

import (
	"fmt"
	"sync"
	"time"

	"agilepower/internal/sim"
	"agilepower/internal/workload"
)

// Fleet builders: ready-made VM populations for the workload classes
// the paper's evaluation draws on. All are deterministic in the seed.

// DiurnalFleet returns n 4-vCPU/8GB VMs driven by enterprise
// day/night demand curves: ~0.4 cores at night rising to ~3 cores at
// midday, with per-VM phase jitter and noise so cluster demand is
// smooth.
func DiurnalFleet(n int, seed uint64) []VMSpec {
	rng := sim.NewRNG(seed)
	out := make([]VMSpec, n)
	for i := range out {
		tr := workload.Diurnal(rng.Fork(), workload.DiurnalSpec{
			BaseCores:   0.4,
			PeakCores:   3.0,
			NoiseFrac:   0.08,
			PhaseJitter: 90 * time.Minute,
		})
		out[i] = VMSpec{
			Name:     fmt.Sprintf("web-%03d", i),
			VCPUs:    4,
			MemoryGB: 8,
			Trace:    tr,
		}
	}
	return out
}

// SpikyFleet returns n VMs with low steady demand punctuated by
// correlated flash-crowd spikes to full vCPU load: the whole tier
// surges within a couple of minutes, the arrival pattern that punishes
// slow wake-up. Spike onset times are shared across the fleet (with
// ±2 minutes of per-VM jitter).
func SpikyFleet(n, spikes int, seed uint64) []VMSpec {
	rng := sim.NewRNG(seed)
	// One shared flash-crowd schedule for the whole tier.
	starts := make([]time.Duration, spikes)
	for i := range starts {
		starts[i] = time.Duration(rng.Float64() * float64(24*time.Hour))
	}
	out := make([]VMSpec, n)
	for i := range out {
		tr := workload.Spiky(rng.Fork(), workload.SpikeSpec{
			BaseCores:   0.3,
			SpikeCores:  4,
			SpikeLen:    15 * time.Minute,
			Starts:      starts,
			StartJitter: 2 * time.Minute,
		})
		out[i] = VMSpec{
			Name:     fmt.Sprintf("api-%03d", i),
			VCPUs:    4,
			MemoryGB: 8,
			Trace:    tr,
		}
	}
	return out
}

// SpikyFleetAt returns n flash-crowd VMs whose spikes hit at the given
// times (±2 minutes of per-VM jitter) — the controlled surge used by
// the spike-response experiments.
func SpikyFleetAt(n int, starts []time.Duration, seed uint64) []VMSpec {
	rng := sim.NewRNG(seed)
	out := make([]VMSpec, n)
	for i := range out {
		tr := workload.Spiky(rng.Fork(), workload.SpikeSpec{
			BaseCores:   0.3,
			SpikeCores:  4,
			SpikeLen:    15 * time.Minute,
			Starts:      starts,
			StartJitter: 2 * time.Minute,
		})
		out[i] = VMSpec{
			Name:     fmt.Sprintf("api-%03d", i),
			VCPUs:    4,
			MemoryGB: 8,
			Trace:    tr,
		}
	}
	return out
}

// BatchFleet returns n VMs running periodic batch jobs: near idle
// between runs, full load during them.
func BatchFleet(n int, seed uint64) []VMSpec {
	rng := sim.NewRNG(seed)
	out := make([]VMSpec, n)
	for i := range out {
		tr := workload.Batch(rng.Fork(), workload.BatchSpec{
			IdleCores: 0.1,
			RunCores:  4,
			Period:    6 * time.Hour,
			RunLen:    time.Hour,
		})
		out[i] = VMSpec{
			Name:     fmt.Sprintf("batch-%03d", i),
			VCPUs:    4,
			MemoryGB: 12,
			Trace:    tr,
		}
	}
	return out
}

// WorkdayFleet returns n business-day VMs whose demand jumps from 0.4
// to 3 cores within ~2 minutes of 9:00 and drops at 18:00, every day
// for the given number of days — the steep recurring ramp where
// predictive wake matters.
func WorkdayFleet(n, days int, seed uint64) []VMSpec {
	rng := sim.NewRNG(seed)
	out := make([]VMSpec, n)
	for i := range out {
		tr := workload.Workday(rng.Fork(), workload.WorkdaySpec{
			Days:       days,
			LowCores:   0.4,
			HighCores:  3,
			OpenJitter: 2 * time.Minute,
			NoiseFrac:  0.05,
		})
		out[i] = VMSpec{
			Name:     fmt.Sprintf("desk-%03d", i),
			VCPUs:    4,
			MemoryGB: 8,
			Trace:    tr,
		}
	}
	return out
}

// MixedFleet returns a realistic enterprise mix: 60% diurnal web VMs,
// 25% spiky API VMs, 15% batch VMs.
func MixedFleet(n int, seed uint64) []VMSpec {
	nWeb := n * 60 / 100
	nAPI := n * 25 / 100
	nBatch := n - nWeb - nAPI
	out := make([]VMSpec, 0, n)
	out = append(out, DiurnalFleet(nWeb, seed)...)
	out = append(out, SpikyFleet(nAPI, 4, seed+1)...)
	out = append(out, BatchFleet(nBatch, seed+2)...)
	return out
}

// ReplicatedFleet returns services×replicas diurnal VMs where the
// replicas of each service form an anti-affinity group (never
// co-located). Availability constraints like these put a floor under
// the number of active hosts and cap what consolidation can save.
func ReplicatedFleet(services, replicas int, seed uint64) []VMSpec {
	rng := sim.NewRNG(seed)
	out := make([]VMSpec, 0, services*replicas)
	for svc := 0; svc < services; svc++ {
		group := fmt.Sprintf("svc-%03d", svc)
		for r := 0; r < replicas; r++ {
			tr := workload.Diurnal(rng.Fork(), workload.DiurnalSpec{
				BaseCores:   0.4,
				PeakCores:   3.0,
				NoiseFrac:   0.08,
				PhaseJitter: 90 * time.Minute,
			})
			out = append(out, VMSpec{
				Name:     fmt.Sprintf("%s-r%d", group, r),
				VCPUs:    4,
				MemoryGB: 8,
				Trace:    tr,
				Group:    group,
			})
		}
	}
	return out
}

// hyperscalePoolSize is the number of distinct demand traces backing a
// hyperscale fleet. VMs share pool traces instead of owning one each:
// traces are read-only (internal/workload builds even the NextChange
// jump table under a sync.Once), so a million-VM fleet costs megabytes
// of trace memory rather than gigabytes.
const hyperscalePoolSize = 512

// tracePoolKey identifies one generated hyperscale trace pool set: the
// fleet kind, the pool size, and the seed fully determine the traces.
type tracePoolKey struct {
	kind string
	size int
	seed uint64
}

// tracePoolCacheMax bounds the pool cache. A grid sweep touches a
// handful of (kind, size, seed) combinations; on overflow the cache is
// simply cleared (the next builds regenerate), keeping worst-case
// memory bounded without an eviction order to maintain.
const tracePoolCacheMax = 16

var (
	tracePoolMu    sync.Mutex
	tracePoolCache map[tracePoolKey][][]*Trace
)

// cachedTracePools returns the shared trace pools for one hyperscale
// fleet build, generating them with gen on first use. Traces are
// read-only after construction (internal/workload), so grid cells and
// replication seeds reusing a (kind, size, seed) share the pool
// instead of regenerating hundreds of traces per cell. Generation runs
// outside the lock; on a generation race the first writer wins and
// later builders adopt its pools, so concurrent callers still share.
func cachedTracePools(kind string, size int, seed uint64, gen func() [][]*Trace) [][]*Trace {
	key := tracePoolKey{kind: kind, size: size, seed: seed}
	tracePoolMu.Lock()
	pools, ok := tracePoolCache[key]
	tracePoolMu.Unlock()
	if ok {
		return pools
	}
	pools = gen()
	tracePoolMu.Lock()
	defer tracePoolMu.Unlock()
	if cached, ok := tracePoolCache[key]; ok {
		return cached
	}
	if tracePoolCache == nil {
		tracePoolCache = make(map[tracePoolKey][][]*Trace)
	}
	if len(tracePoolCache) >= tracePoolCacheMax {
		clear(tracePoolCache)
	}
	tracePoolCache[key] = pools
	return pools
}

// HyperscaleFleet returns n small (2 vCPU / 4 GB) VMs for the
// hyperscale experiment, drawing demand from a shared pool of at most
// hyperscalePoolSize coarse-grained traces. Every trace is sampled at
// a 15-minute interval, so a 1-minute evaluation tick sees a demand
// edge on at most one tick in fifteen — the plateau structure delta
// evaluation exploits. The mix interleaves diurnal web (60%),
// flash-crowd API (20%), periodic batch (10%) and flat utility VMs
// (10%) so every host carries a blend.
func HyperscaleFleet(n int, seed uint64) []VMSpec {
	interval := 15 * time.Minute
	size := hyperscalePoolSize
	if size > n {
		size = n
	}
	if size < 20 {
		size = 20
	}
	// The RNG is consumed only inside pool generation, so the pools are
	// a pure function of (size, seed) and repeated builds — grid cells,
	// replication seeds — reuse the cached traces.
	pools := cachedTracePools("hyperscale", size, seed, func() [][]*Trace {
		rng := sim.NewRNG(seed)
		web := make([]*Trace, size*6/10)
		for i := range web {
			web[i] = workload.Diurnal(rng.Fork(), workload.DiurnalSpec{
				Interval:    interval,
				BaseCores:   0.1,
				PeakCores:   0.8,
				NoiseFrac:   0.05,
				PhaseJitter: 90 * time.Minute,
			})
		}
		api := make([]*Trace, size*2/10)
		for i := range api {
			api[i] = workload.Spiky(rng.Fork(), workload.SpikeSpec{
				Interval:   interval,
				BaseCores:  0.1,
				SpikeCores: 2,
				Spikes:     2,
				SpikeLen:   45 * time.Minute,
			})
		}
		batch := make([]*Trace, size/10)
		for i := range batch {
			batch[i] = workload.Batch(rng.Fork(), workload.BatchSpec{
				Interval:  interval,
				IdleCores: 0.05,
				RunCores:  2,
				Period:    6 * time.Hour,
				RunLen:    90 * time.Minute,
			})
		}
		flat := make([]*Trace, size/10)
		for i := range flat {
			flat[i] = workload.Constant(0.1 + 0.05*float64(i%4))
		}
		return [][]*Trace{web, api, batch, flat}
	})
	web, api, batch, flat := pools[0], pools[1], pools[2], pools[3]
	out := make([]VMSpec, n)
	var wi, ai, bi, fi int
	for i := range out {
		var tr *Trace
		var prefix string
		switch i % 10 {
		case 0, 1, 2, 3, 4, 5:
			tr, prefix = web[wi%len(web)], "web"
			wi++
		case 6, 7:
			tr, prefix = api[ai%len(api)], "api"
			ai++
		case 8:
			tr, prefix = batch[bi%len(batch)], "bat"
			bi++
		default:
			tr, prefix = flat[fi%len(flat)], "flt"
			fi++
		}
		out[i] = VMSpec{
			Name:     fmt.Sprintf("%s-%06d", prefix, i),
			VCPUs:    2,
			MemoryGB: 4,
			Trace:    tr,
		}
	}
	return out
}

// DeepTroughFleet is the trough-heavy hyperscale variant: demand
// concentrated in short windows — long-idle batch jobs (50%),
// noise-free business-day steps (30%) and flat trickle VMs (20%) —
// so outside those windows the overwhelming majority of hosts are
// quiescent (no demand edge for hours at a time) and delta evaluation
// skips them entirely. Traces come from a shared pool like
// HyperscaleFleet's.
func DeepTroughFleet(n int, seed uint64) []VMSpec {
	interval := 15 * time.Minute
	size := hyperscalePoolSize
	if size > n {
		size = n
	}
	if size < 20 {
		size = 20
	}
	pools := cachedTracePools("deeptrough", size, seed, func() [][]*Trace {
		rng := sim.NewRNG(seed)
		batch := make([]*Trace, size*5/10)
		for i := range batch {
			batch[i] = workload.Batch(rng.Fork(), workload.BatchSpec{
				Interval:  interval,
				IdleCores: 0.02,
				RunCores:  2,
				Period:    12 * time.Hour,
				RunLen:    time.Hour,
			})
		}
		day := make([]*Trace, size*3/10)
		for i := range day {
			day[i] = workload.Workday(rng.Fork(), workload.WorkdaySpec{
				Interval:   interval,
				LowCores:   0.05,
				HighCores:  1.5,
				JumpLen:    15 * time.Minute,
				OpenJitter: 30 * time.Minute,
			})
		}
		flat := make([]*Trace, size*2/10)
		for i := range flat {
			flat[i] = workload.Constant(0.02 + 0.02*float64(i%3))
		}
		return [][]*Trace{batch, day, flat}
	})
	batch, day, flat := pools[0], pools[1], pools[2]
	out := make([]VMSpec, n)
	var bi, di, fi int
	for i := range out {
		var tr *Trace
		var prefix string
		switch i % 10 {
		case 0, 1, 2, 3, 4:
			tr, prefix = batch[bi%len(batch)], "bat"
			bi++
		case 5, 6, 7:
			tr, prefix = day[di%len(day)], "day"
			di++
		default:
			tr, prefix = flat[fi%len(flat)], "flt"
			fi++
		}
		out[i] = VMSpec{
			Name:     fmt.Sprintf("%s-%06d", prefix, i),
			VCPUs:    2,
			MemoryGB: 4,
			Trace:    tr,
		}
	}
	return out
}

// ConstantFleet returns n VMs each demanding a flat demand in cores —
// the building block of steady-load sweeps (figure F4).
func ConstantFleet(n int, demand float64) []VMSpec {
	out := make([]VMSpec, n)
	for i := range out {
		out[i] = VMSpec{
			Name:     fmt.Sprintf("flat-%03d", i),
			VCPUs:    4,
			MemoryGB: 8,
			Trace:    workload.Constant(demand),
		}
	}
	return out
}

// GenerateDiurnal exposes the diurnal trace generator for custom
// fleets.
func GenerateDiurnal(seed uint64, base, peak float64, noiseFrac float64, jitter time.Duration) *Trace {
	return workload.Diurnal(sim.NewRNG(seed), workload.DiurnalSpec{
		BaseCores:   base,
		PeakCores:   peak,
		NoiseFrac:   noiseFrac,
		PhaseJitter: jitter,
	})
}

// GenerateSpiky exposes the flash-crowd trace generator for custom
// fleets.
func GenerateSpiky(seed uint64, base, spike float64, spikes int, spikeLen time.Duration) *Trace {
	return workload.Spiky(sim.NewRNG(seed), workload.SpikeSpec{
		BaseCores:  base,
		SpikeCores: spike,
		Spikes:     spikes,
		SpikeLen:   spikeLen,
	})
}

// ConstantTrace exposes the constant trace constructor.
func ConstantTrace(demand float64) *Trace { return workload.Constant(demand) }
