# Developer entry points. The simulator is pure Go with no
# dependencies, so every target below is just the go tool.

GO ?= go

.PHONY: build test race bench bench-baseline sweep-quick clean

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Race-enabled run of the full suite, including the parallel-runner
# smoke tests. CI should treat this as tier-1 alongside `make test`.
race:
	$(GO) test -race ./...

bench:
	$(GO) test -run '^$$' -bench=. -benchmem -benchtime=1x -count=3 .

# Record a labelled benchmark run into BENCH_parallel.json (appends to
# any runs already in the file). Override LABEL to name the run:
#
#	make bench-baseline LABEL=sequential-baseline
bench-baseline: LABEL ?= parallel
bench-baseline:
	$(GO) test -run '^$$' -bench=. -benchmem -benchtime=1x -count=3 . \
		| $(GO) run ./cmd/benchjson -label $(LABEL) -out BENCH_parallel.json

# Fast end-to-end smoke: the whole paper reproduction in quick mode.
sweep-quick:
	$(GO) run ./cmd/sweep -exp all -quick

clean:
	$(GO) clean ./...
