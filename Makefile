# Developer entry points. The simulator is pure Go with no
# dependencies, so every target below is just the go tool.

GO ?= go
GOFMT ?= gofmt

.PHONY: build test test-shuffle race vet fmt staticcheck determinism bench bench-smoke bench-baseline bench-hotpath bench-alloc bench-scale bench-scale-smoke bench-hyperscale bench-hyperscale-smoke bench-manager bench-manager-smoke bench-setup bench-setup-smoke bench-api bench-api-smoke scenario-gate sweep-quick ci clean

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The suite again with test order shuffled: catches tests that lean on
# package-level state left behind by an earlier test.
test-shuffle:
	$(GO) test -shuffle=on ./...

# Race-enabled run of the full suite, including the parallel-runner
# smoke tests. CI should treat this as tier-1 alongside `make test`.
# The explicit timeout covers the hyperscale experiment replays, which
# blow past go test's default 10 minutes under the race detector on
# small machines.
race:
	$(GO) test -race -timeout 90m ./...

vet:
	$(GO) vet ./...

# staticcheck at a pinned version, fetched on demand by the go tool.
# Not part of `make ci`: the local container has no network for module
# downloads, so CI runs it in its own lint step.
staticcheck:
	$(GO) run honnef.co/go/tools/cmd/staticcheck@2023.1.7 ./...

# Fails (and lists the offenders) if any file needs gofmt.
fmt:
	@out="$$($(GOFMT) -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

# The determinism gate: the full experiment suite must render
# byte-identically whether run on 1 worker or many — and, since the
# evaluation tick can now be sharded, for every shard/eval-worker
# combination — and the lossy control-plane message layer must replay
# identically for a fixed seed. Run explicitly in CI (it is also part
# of `make test`) so a violation is unmissable.
determinism:
	$(GO) test -run 'TestRunAllByteIdenticalAcrossWorkers|TestRunAllByteIdenticalAcrossShards|TestShardedFaultedExperimentsByteIdentical|TestPlaneDeterministicAcrossReruns|TestDeltaMatrixMatchesGolden|TestDeltaEvaluateBitIdentical|TestIncrementalMatrixMatchesGolden|TestHyperscaleIncrementalMatrixMatchesGolden|TestIncrementalPlanningParity|TestForkMatrixMatchesGolden|TestColdWorldMatchesGolden|TestForkMatchesColdStart|TestConcurrentForksMatchColdStart' -v \
		./internal/experiments/ ./internal/ctrlplane/ ./internal/cluster/ ./internal/core/ .

bench:
	$(GO) test -run '^$$' -bench=. -benchmem -benchtime=1x -count=3 ./...

# One iteration of every benchmark in every package — a compile-and-run
# smoke so benchmarks cannot rot, not a measurement.
bench-smoke:
	$(GO) test -run '^$$' -bench=. -benchtime=1x ./...

# Record a labelled benchmark run into a JSON artifact (appends to any
# runs already in the file). Override LABEL to name the run and OUT to
# pick the artifact:
#
#	make bench-baseline LABEL=sequential-baseline OUT=BENCH_parallel.json
bench-baseline: LABEL ?= parallel
bench-baseline: OUT ?= BENCH_parallel.json
bench-baseline:
	$(GO) test -run '^$$' -bench=. -benchmem -benchtime=1x -count=3 . \
		| $(GO) run ./cmd/benchjson -label $(LABEL) -out $(OUT)

# Record the hot-path benchmarks (evaluate loop, manager control step,
# simulated day) into BENCH_hotpath.json. The checked-in artifact holds
# the pre/post numbers of the allocation-free rework; re-run after any
# change to the evaluate or control paths:
#
#	make bench-hotpath LABEL=hotpath-post
bench-hotpath: LABEL ?= hotpath
bench-hotpath:
	$(GO) test -run '^$$' -bench 'BenchmarkClusterEvaluate|BenchmarkSimulatedDay|BenchmarkManagerControlStep' \
		-benchmem -count=3 ./internal/cluster/ ./internal/core/ \
		| $(GO) run ./cmd/benchjson -label $(LABEL) -out BENCH_hotpath.json

# Record the datacenter-scale benchmarks (one evaluation tick and one
# full simulated day at 2048 hosts / 16384 VMs, serial and sharded)
# into BENCH_scale.json. The checked-in artifact holds the pre/post
# numbers of the sharded-evaluation rework; the speedup is only
# visible with GOMAXPROCS >= the shard count:
#
#	make bench-scale LABEL=scale-post-sharded
bench-scale: LABEL ?= scale
bench-scale:
	$(GO) test -run '^$$' -bench 'BenchmarkScaleEvaluate|BenchmarkScaleDay' \
		-benchmem -count=3 -timeout 30m ./internal/cluster/ \
		| $(GO) run ./cmd/benchjson -label $(LABEL) -out BENCH_scale.json

# One iteration of the scale benchmarks: proves the 2048-host fleet
# still builds and the sharded tick stays allocation-free, without the
# cost of a measurement run. CI runs this alongside bench-alloc.
bench-scale-smoke:
	$(GO) test -run '^$$' -bench 'BenchmarkScaleEvaluate' -benchmem -benchtime=1x \
		./internal/cluster/

# Record the hyperscale benchmarks (one steady-state evaluation tick on
# the 16384-host / 131072-VM quiescent-majority fixture, full-scan
# versus delta) into BENCH_hyperscale.json. The checked-in artifact
# holds the pre/post numbers of the delta-evaluation rework; the
# acceptance bar is delta >= 10x faster than full-scan at 0 allocs/op:
#
#	make bench-hyperscale LABEL=hyperscale-post-delta
bench-hyperscale: LABEL ?= hyperscale
bench-hyperscale:
	$(GO) test -run '^$$' -bench 'BenchmarkHyperscaleEvaluate' \
		-benchmem -benchtime=500x -count=3 -timeout 30m ./internal/cluster/ \
		| $(GO) run ./cmd/benchjson -label $(LABEL) -out BENCH_hyperscale.json

# The hyperscale gate without a measurement run: the delta and
# full-scan byte-identity tests at experiment scale, the delta 0-alloc
# gate, and the quick-mode heap budget assertion. CI runs this as its
# hyperscale smoke job.
bench-hyperscale-smoke:
	$(GO) test -run '^$$' -bench 'BenchmarkHyperscaleEvaluate' -benchmem -benchtime=1x \
		./internal/cluster/
	$(GO) test -run 'TestDeltaSteadyStateAllocFree|TestHyperscaleQuickHeapBudget|TestHyperscaleFullScanMatchesGolden' -v \
		./internal/cluster/ ./internal/experiments/

# Record the manager-planning benchmarks (one steady-state control step
# over the 16384-host / 131072-VM quiescent-majority fixture, full-scan
# versus incremental) into BENCH_manager.json. The checked-in artifact
# holds the pre/post numbers of the incremental-planning rework; the
# acceptance bar is incremental >= 10x faster than full-scan at
# 0 allocs/op:
#
#	make bench-manager LABEL=manager-post-incremental
bench-manager: LABEL ?= manager
bench-manager:
	$(GO) test -run '^$$' -bench 'BenchmarkManagerControlStepHyperscale' \
		-benchmem -benchtime=50x -count=3 -timeout 30m ./internal/core/ \
		| $(GO) run ./cmd/benchjson -label $(LABEL) -out BENCH_manager.json

# The manager-cost gate without a measurement run: one iteration of the
# hyperscale control-step benchmark (so the fixture cannot rot), the
# steady-state 0-alloc assertion, and the incremental/full-scan parity
# property tests. CI runs this as its manager-gate job; part of
# `make ci`.
bench-manager-smoke:
	$(GO) test -run '^$$' -bench 'BenchmarkManagerControlStepHyperscale' -benchmem -benchtime=1x \
		./internal/core/
	$(GO) test -run 'TestManagerStepSteadyStateAllocFree|TestIncrementalPlanningParity|TestIncrementalModeMatchesFullScan' -v \
		./internal/core/ .

# Record the world-setup benchmarks (per-cell world construction and
# end-to-end session creation, cold versus forked from a shared
# prototype, at 256-host and 16384-host scale) into BENCH_setup.json.
# The checked-in artifact holds the pre/post numbers of the
# snapshot/fork rework; the acceptance bar is fork >= 5x cheaper than
# cold world construction at quick scale:
#
#	make bench-setup LABEL=setup-post-fork
# The bench output lands in a temp file and is recorded afterwards —
# piping straight into `go run` would compile benchjson concurrently
# with the measurement and steal CPU from it.
bench-setup: LABEL ?= setup
bench-setup:
	$(GO) test -run '^$$' -bench '(BenchmarkWorldBuildVsFork|BenchmarkWorldForkVsColdStart)/cold' \
		-benchmem -benchtime=200x -count=3 -timeout 30m . > bench_setup_cold.tmp
	$(GO) test -run '^$$' -bench '(BenchmarkWorldBuildVsFork|BenchmarkWorldForkVsColdStart)/fork' \
		-benchmem -benchtime=200x -count=3 -timeout 30m . > bench_setup_fork.tmp
	$(GO) run ./cmd/benchjson -label $(LABEL)-pre-cold -out BENCH_setup.json < bench_setup_cold.tmp
	$(GO) run ./cmd/benchjson -label $(LABEL)-post-fork -out BENCH_setup.json < bench_setup_fork.tmp
	rm -f bench_setup_cold.tmp bench_setup_fork.tmp

# The setup-cost gate without a measurement run: one iteration of both
# setup benchmarks (so the fixtures cannot rot), the fork-vs-cold
# byte-identity matrix, the forked-tick 0-alloc assertion, the
# screened-placement regression test, and the ColdWorld escape-hatch
# golden check. CI runs this as its setup-gate job; part of `make ci`.
bench-setup-smoke:
	$(GO) test -run '^$$' -bench 'BenchmarkWorldBuildVsFork|BenchmarkWorldForkVsColdStart' \
		-benchmem -benchtime=1x .
	$(GO) test -run 'TestForkMatchesColdStart|TestForkGridMatchesColdStart|TestForkedEvaluateSteadyStateAllocFree|TestPlaceInitialMatchesLegacyRetry|TestColdWorldMatchesGolden' -v \
		. ./internal/cluster/ ./internal/experiments/

# Allocation regression gate: the steady-state evaluation tick — serial
# and sharded — the pooled event loop, and the manager's cached control
# step must stay allocation-free, and the full report bytes must match
# the pre-optimization goldens. Part of `make ci`.
bench-alloc:
	$(GO) test -run 'AllocFree|ScheduleFuncPool|PreOptimizationGolden|ArchivedResults' -v \
		./internal/cluster/ ./internal/sim/ ./internal/experiments/ ./internal/core/

# Record the full-scale service load test into BENCH_api.json: a
# thousand concurrent sessions against a race-enabled daemon, with a
# hot/cold request mix so the artifact holds both the cache-hit and
# cold-run latency distributions (the cache acceptance bar is hit mean
# >= 100x below cold mean):
#
#	make bench-api LABEL=api-load
bench-api: LABEL ?= api-load
bench-api:
	APIGATE_SESSIONS=1000 APIGATE_PER_SESSION=4 APIGATE_LABEL=$(LABEL) \
		sh scripts/api_gate.sh

# The service gate without a measurement run: race-enabled daemon, a
# burst of concurrent sessions through the async API (zero failed
# jobs, nonzero cache hit rate — cmd/apiload enforces both), graceful
# drain, and the persisted terminal-job ledger. Part of `make ci`.
bench-api-smoke:
	sh scripts/api_gate.sh

# The scenario gate: every file in the curated scenarios/ library must
# parse and validate, and two of them (the chaos az-outage and the
# hand-scripted demand-surge drill) run end-to-end with their
# assertions — cmd/scenario exits 2 on any failed assertion or
# stranded VM, which fails the target. Part of `make ci`.
scenario-gate:
	$(GO) run ./cmd/scenario validate scenarios/*.json
	$(GO) run ./cmd/scenario run scenarios/az-outage.json
	$(GO) run ./cmd/scenario run scenarios/demand-surge.json

# Fast end-to-end smoke: the whole paper reproduction in quick mode.
sweep-quick:
	$(GO) run ./cmd/sweep -exp all -quick

# Everything the CI workflow runs, in the same order, for one local
# command that predicts a green pipeline.
ci: vet fmt build test test-shuffle race determinism bench-alloc bench-scale-smoke bench-hyperscale-smoke bench-manager-smoke bench-setup-smoke bench-api-smoke scenario-gate bench-smoke

clean:
	$(GO) clean ./...
