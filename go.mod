module agilepower

go 1.22
