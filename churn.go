package agilepower

import (
	"fmt"
	"time"

	"agilepower/internal/cluster"
	"agilepower/internal/sim"
	"agilepower/internal/telemetry"
	"agilepower/internal/vm"
	"agilepower/internal/workload"
)

// ChurnSpec adds dynamic provisioning to a scenario: VMs arrive as a
// Poisson process, run for an exponentially distributed lifetime, and
// depart. Arrived VMs sit pending (demand charged as unserved) until
// the manager places them — so provisioning latency becomes a measured
// quantity, including the cost of waking parked capacity for new
// tenants.
type ChurnSpec struct {
	// ArrivalsPerHour is the Poisson arrival rate.
	ArrivalsPerHour float64
	// MeanLifetime is the exponential mean VM lifetime (default 4h).
	MeanLifetime time.Duration
	// VCPUs and MemoryGB size each arriving VM (defaults 4 / 8).
	VCPUs    float64
	MemoryGB float64
	// DemandCores is the mean flat demand of an arriving VM; each VM
	// draws uniformly from [0.5, 1.5]× this value (default 1).
	DemandCores float64
}

func (c *ChurnSpec) defaults() ChurnSpec {
	out := *c
	if out.MeanLifetime <= 0 {
		out.MeanLifetime = 4 * time.Hour
	}
	if out.VCPUs <= 0 {
		out.VCPUs = 4
	}
	if out.MemoryGB <= 0 {
		out.MemoryGB = 8
	}
	if out.DemandCores <= 0 {
		out.DemandCores = 1
	}
	return out
}

// Validate checks the spec.
func (c *ChurnSpec) Validate() error {
	if c.ArrivalsPerHour < 0 {
		return fmt.Errorf("agilepower: negative arrival rate %v", c.ArrivalsPerHour)
	}
	return nil
}

// ChurnStats summarizes dynamic provisioning over a run.
type ChurnStats struct {
	Arrived  int
	Departed int
	// Placed is how many arrivals were placed onto hosts.
	Placed int
	// ProvisionP50/P95/Max are arrival→placement latencies.
	ProvisionP50 time.Duration
	ProvisionP95 time.Duration
	ProvisionMax time.Duration
}

// scheduleChurn wires arrival/departure events into the engine.
func scheduleChurn(eng *sim.Engine, cl *cluster.Cluster, spec ChurnSpec, horizon time.Duration, stats *ChurnStats) {
	spec = spec.defaults()
	if spec.ArrivalsPerHour <= 0 {
		return
	}
	rng := eng.RNG().Fork()
	meanGap := time.Duration(float64(time.Hour) / spec.ArrivalsPerHour)

	var depart func(id vm.ID)
	depart = func(id vm.ID) {
		if err := cl.RemoveVM(id); err != nil {
			// Mid-migration: retry shortly after the move commits.
			eng.AfterFunc(time.Minute, func() { depart(id) })
			return
		}
		stats.Departed++
	}

	n := 0
	var arrive func()
	arrive = func() {
		n++
		demand := spec.DemandCores * rng.Range(0.5, 1.5)
		v, err := cl.AddPendingVM(vm.Config{
			Name:     fmt.Sprintf("churn-%04d", n),
			VCPUs:    spec.VCPUs,
			MemoryGB: spec.MemoryGB,
			Trace:    workload.Constant(demand),
		})
		if err == nil {
			stats.Arrived++
			life := time.Duration(rng.Exp(float64(spec.MeanLifetime)))
			eng.AfterFunc(life, func() { depart(v.ID()) })
		}
		gap := time.Duration(rng.Exp(float64(meanGap)))
		if eng.Now()+gap < sim.Time(horizon) {
			eng.AfterFunc(gap, arrive)
		}
	}
	firstGap := time.Duration(rng.Exp(float64(meanGap)))
	if firstGap < horizon {
		eng.AfterFunc(firstGap, arrive)
	}
}

// churnStatsFrom finalizes the provisioning latency percentiles.
func churnStatsFrom(cl *cluster.Cluster, stats *ChurnStats) {
	lats := cl.ProvisionLatencies()
	stats.Placed = len(lats)
	if len(lats) == 0 {
		return
	}
	vals := make([]float64, len(lats))
	for i, l := range lats {
		vals[i] = l.Seconds()
	}
	sum := telemetry.Summarize(vals)
	stats.ProvisionP50 = time.Duration(sum.P50 * float64(time.Second))
	stats.ProvisionP95 = time.Duration(sum.P95 * float64(time.Second))
	stats.ProvisionMax = time.Duration(sum.Max * float64(time.Second))
}
