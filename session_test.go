package agilepower

import (
	"testing"
	"time"

	"agilepower/internal/events"
)

func TestSessionStepAndInspect(t *testing.T) {
	se, err := Scenario{
		Hosts:   4,
		VMs:     ConstantFleet(8, 0.5),
		Manager: ManagerConfig{Policy: DPMS3},
	}.Start()
	if err != nil {
		t.Fatal(err)
	}
	if se.Now() != 0 {
		t.Fatalf("start time = %v", se.Now())
	}
	if err := se.Step(2 * time.Hour); err != nil {
		t.Fatal(err)
	}
	if se.Now() != 2*time.Hour {
		t.Fatalf("now = %v", se.Now())
	}
	if se.ActiveHosts() < 1 || se.ActiveHosts() > 4 {
		t.Fatalf("active = %d", se.ActiveHosts())
	}
	if se.PowerW() <= 0 {
		t.Fatal("no power draw")
	}
	if se.DemandCores() != 4 {
		t.Fatalf("demand = %v", se.DemandCores())
	}
	if err := se.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	res := se.Result()
	if res.Horizon != 2*time.Hour || res.Energy <= 0 {
		t.Fatalf("result: %+v", res)
	}
	// Finished sessions refuse to advance.
	if err := se.Step(time.Hour); err == nil {
		t.Fatal("stepped a finished session")
	}
}

func TestSessionRunMatchesScenarioRun(t *testing.T) {
	sc := Scenario{
		Hosts:   4,
		VMs:     DiurnalFleet(12, 3),
		Horizon: 6 * time.Hour,
		Manager: ManagerConfig{Policy: DPMS3},
		Seed:    3,
	}
	direct, err := sc.Run()
	if err != nil {
		t.Fatal(err)
	}
	se, err := sc.Start()
	if err != nil {
		t.Fatal(err)
	}
	// Step in uneven chunks: the outcome must be identical (the event
	// queue, not the stepping pattern, defines behaviour).
	for _, at := range []time.Duration{37 * time.Minute, 2 * time.Hour, 5*time.Hour + 13*time.Minute, 6 * time.Hour} {
		if err := se.RunUntil(at); err != nil {
			t.Fatal(err)
		}
	}
	stepped := se.Result()
	if direct.Energy != stepped.Energy || direct.Migrations.Completed != stepped.Migrations.Completed ||
		direct.Satisfaction != stepped.Satisfaction {
		t.Fatalf("stepped session diverged: %v/%v vs %v/%v",
			direct.Energy, direct.Migrations.Completed, stepped.Energy, stepped.Migrations.Completed)
	}
}

func TestSessionMaintenanceFlow(t *testing.T) {
	se, err := Scenario{
		Hosts:   4,
		VMs:     ConstantFleet(8, 1),
		Manager: ManagerConfig{Policy: NoPM, Period: 2 * time.Minute},
	}.Start()
	if err != nil {
		t.Fatal(err)
	}
	if err := se.Step(10 * time.Minute); err != nil {
		t.Fatal(err)
	}
	if err := se.EnterMaintenance(1); err != nil {
		t.Fatal(err)
	}
	if err := se.Step(30 * time.Minute); err != nil {
		t.Fatal(err)
	}
	if !se.MaintenanceReady(1) {
		t.Fatal("host 1 not drained")
	}
	if err := se.ExitMaintenance(1); err != nil {
		t.Fatal(err)
	}
	if err := se.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	res := se.Result()
	if res.Migrations.Completed == 0 {
		t.Fatal("maintenance drained nothing")
	}
}

func TestSessionAddRemoveVM(t *testing.T) {
	se, err := Scenario{
		Hosts:   2,
		VMs:     ConstantFleet(2, 0.5),
		Manager: ManagerConfig{Policy: NoPM},
	}.Start()
	if err != nil {
		t.Fatal(err)
	}
	id, err := se.AddVM(VMSpec{Name: "late", VCPUs: 2, MemoryGB: 4, Trace: ConstantTrace(1)})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := se.AddVM(VMSpec{Name: "broken", VCPUs: 2, MemoryGB: 4}); err == nil {
		t.Fatal("VM without trace accepted")
	}
	if err := se.Step(5 * time.Minute); err != nil {
		t.Fatal(err)
	}
	// Placed by the fast tick.
	placed := se.Events().Filter(events.OfKind(events.VMPlaced), events.ForVM(id))
	if len(placed) != 1 {
		t.Fatalf("placement events = %d", len(placed))
	}
	if err := se.RemoveVM(id); err != nil {
		t.Fatal(err)
	}
	if err := se.Step(time.Minute); err != nil {
		t.Fatal(err)
	}
	if se.DemandCores() != 1 {
		t.Fatalf("demand after removal = %v", se.DemandCores())
	}
}

func TestSessionRunUntilBackwardsRejected(t *testing.T) {
	se, err := Scenario{Hosts: 1, VMs: ConstantFleet(1, 0.1)}.Start()
	if err != nil {
		t.Fatal(err)
	}
	if err := se.Step(time.Hour); err != nil {
		t.Fatal(err)
	}
	if err := se.RunUntil(30 * time.Minute); err == nil {
		t.Fatal("ran backwards")
	}
}
