package agilepower

import (
	"testing"
	"time"

	"agilepower/internal/ctrlplane"
)

func ctrlScenario(delay time.Duration, loss float64) Scenario {
	s := Scenario{
		Name:    "ctrl",
		Hosts:   6,
		VMs:     MixedFleet(24, 5),
		Horizon: 8 * time.Hour,
		Seed:    5,
		Manager: ManagerConfig{Policy: DPMS3},
	}
	cfg := CtrlPreset(delay, loss)
	if cfg.Enabled() {
		s.CtrlPlane = &cfg
	}
	return s
}

// A dormant control-plane config must be indistinguishable from no
// config at all: the plane is never constructed, so not a single RNG
// draw or event differs.
func TestDormantCtrlPlaneConfigIdenticalToNil(t *testing.T) {
	plain := ctrlScenario(0, 0)
	dormant := ctrlScenario(0, 0)
	dormant.CtrlPlane = &CtrlPlaneConfig{}

	a, err := plain.Run()
	if err != nil {
		t.Fatal(err)
	}
	b, err := dormant.Run()
	if err != nil {
		t.Fatal(err)
	}
	if a.Energy != b.Energy || a.Satisfaction != b.Satisfaction ||
		a.ViolationFraction != b.ViolationFraction {
		t.Fatalf("dormant config changed the run: %v/%v vs %v/%v",
			a.Energy, a.Satisfaction, b.Energy, b.Satisfaction)
	}
	if a.Sleeps != b.Sleeps || a.Wakes != b.Wakes ||
		a.Migrations.Completed != b.Migrations.Completed {
		t.Fatal("dormant config changed manager actions")
	}
	if a.Events.Len() != b.Events.Len() {
		t.Fatalf("event logs diverged: %d vs %d", a.Events.Len(), b.Events.Len())
	}
	for i, ea := range a.Events.All() {
		if ea != b.Events.All()[i] {
			t.Fatalf("event %d diverged: %v vs %v", i, ea, b.Events.All()[i])
		}
	}
	// A plane-free run reports a clean message-layer ledger.
	if len(b.FaultCounters) != 0 {
		t.Fatalf("plane-free run reports message-layer activity: %+v", b.FaultCounters)
	}
}

// lossyRun drives a degraded-network scenario (with crash faults, so
// the heartbeat liveness path fires too) as a stepped session, checking
// the cluster's structural invariants every 15 simulated minutes — a
// double-placed VM would trip them at the next check.
func lossyRun(t *testing.T) *Result {
	t.Helper()
	sc := ctrlScenario(2*time.Second, 0.25)
	fc := FaultPreset(0.3)
	sc.Faults = &fc

	sess, err := sc.Start()
	if err != nil {
		t.Fatal(err)
	}
	for at := 15 * time.Minute; at <= sc.Horizon; at += 15 * time.Minute {
		if err := sess.RunUntil(at); err != nil {
			t.Fatal(err)
		}
		if err := sess.CheckInvariants(); err != nil {
			t.Fatalf("invariants broken at %v: %v", at, err)
		}
	}
	return sess.Result()
}

func TestLossyCtrlPlaneRetriesWithoutDoublePlacement(t *testing.T) {
	a := lossyRun(t)

	// The degraded network actually degraded: commands were dropped,
	// retried, and duplicates were suppressed at the receiver.
	if a.FaultCounters[ctrlplane.CtrCmdRetries] == 0 {
		t.Fatalf("no command retries at 25%% loss: %+v", a.FaultCounters)
	}
	if a.FaultCounters[ctrlplane.CtrCmdDrops] == 0 {
		t.Fatalf("no command drops at 25%% loss: %+v", a.FaultCounters)
	}
	// Crash faults plus lost heartbeats exercised the liveness machine.
	if a.FaultCounters[ctrlplane.CtrSuspects] == 0 {
		t.Fatalf("no liveness suspicions under crashes + loss: %+v", a.FaultCounters)
	}

	// Same seed, same degraded network → the entire run (message fates
	// included) replays identically.
	b := lossyRun(t)
	if a.Energy != b.Energy || a.Satisfaction != b.Satisfaction {
		t.Fatalf("lossy run diverged: %v vs %v", a.Energy, b.Energy)
	}
	for name, v := range a.FaultCounters {
		if b.FaultCounters[name] != v {
			t.Fatalf("counter %s diverged: %d vs %d", name, v, b.FaultCounters[name])
		}
	}
	if len(a.FaultCounters) != len(b.FaultCounters) {
		t.Fatal("counter sets diverged across reruns")
	}
	if a.Events.Len() != b.Events.Len() {
		t.Fatalf("event logs diverged: %d vs %d", a.Events.Len(), b.Events.Len())
	}
	for i, ea := range a.Events.All() {
		if ea != b.Events.All()[i] {
			t.Fatalf("event %d diverged: %v vs %v", i, ea, b.Events.All()[i])
		}
	}
}

func TestScenarioValidateRejectsBadCtrlPlaneConfig(t *testing.T) {
	s := ctrlScenario(0, 0)
	s.CtrlPlane = &CtrlPlaneConfig{CmdLossProb: 1.5}
	if err := s.Validate(); err == nil {
		t.Fatal("accepted out-of-range command loss probability")
	}
	s.CtrlPlane = &CtrlPlaneConfig{CmdDelay: -time.Second}
	if err := s.Validate(); err == nil {
		t.Fatal("accepted negative command delay")
	}
}
