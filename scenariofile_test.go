package agilepower

import (
	"testing"
	"time"
)

const sampleScenarioFile = `{
  "name": "file-test",
  "hosts": 8,
  "fleets": [
    {"kind": "diurnal", "count": 16},
    {"kind": "spiky", "count": 8, "spikes": 2},
    {"kind": "replicated", "services": 2, "replicas": 3}
  ],
  "horizonHours": 6,
  "policy": "dpm-s3",
  "manager": {"periodMinutes": 3, "targetUtil": 0.65, "predictiveWake": true, "forecast": "ewma", "incremental": "off"},
  "churn": {"arrivalsPerHour": 2, "meanLifetimeHours": 1},
  "seed": 5
}`

func TestParseScenarioFull(t *testing.T) {
	sc, err := ParseScenario([]byte(sampleScenarioFile))
	if err != nil {
		t.Fatal(err)
	}
	if sc.Name != "file-test" || sc.Hosts != 8 || sc.Seed != 5 {
		t.Fatalf("header: %+v", sc)
	}
	if len(sc.VMs) != 16+8+6 {
		t.Fatalf("fleet size = %d", len(sc.VMs))
	}
	if sc.Horizon != 6*time.Hour {
		t.Fatalf("horizon = %v", sc.Horizon)
	}
	if sc.Manager.Policy.Name != "dpm-s3" {
		t.Fatalf("policy = %q", sc.Manager.Policy.Name)
	}
	if sc.Manager.Period != 3*time.Minute || sc.Manager.TargetUtil != 0.65 {
		t.Fatalf("manager: %+v", sc.Manager)
	}
	if !sc.Manager.PredictiveWake {
		t.Fatal("predictive not set")
	}
	if sc.Manager.Forecast.Kind != ForecastEWMA {
		t.Fatalf("forecast = %v", sc.Manager.Forecast.Kind)
	}
	if sc.Manager.Incremental != IncrementalOff {
		t.Fatalf("incremental = %v", sc.Manager.Incremental)
	}
	if sc.Churn == nil || sc.Churn.ArrivalsPerHour != 2 || sc.Churn.MeanLifetime != time.Hour {
		t.Fatalf("churn: %+v", sc.Churn)
	}
	// And it runs.
	res, err := sc.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Energy <= 0 {
		t.Fatal("no energy")
	}
}

func TestParseScenarioErrors(t *testing.T) {
	cases := []struct {
		name string
		in   string
	}{
		{"bad json", `{`},
		{"no fleets", `{"hosts":4,"fleets":[]}`},
		{"bad fleet kind", `{"hosts":4,"fleets":[{"kind":"quantum","count":2}]}`},
		{"bad policy", `{"hosts":4,"policy":"yolo","fleets":[{"kind":"flat","count":2}]}`},
		{"bad forecast", `{"hosts":4,"fleets":[{"kind":"flat","count":2}],"manager":{"forecast":"crystal-ball"}}`},
		{"bad incremental", `{"hosts":4,"fleets":[{"kind":"flat","count":2}],"manager":{"incremental":"maybe"}}`},
		{"replicated missing params", `{"hosts":4,"fleets":[{"kind":"replicated"}]}`},
		{"no hosts", `{"fleets":[{"kind":"flat","count":2}]}`},
		{"bad churn", `{"hosts":4,"fleets":[{"kind":"flat","count":2}],"churn":{"arrivalsPerHour":-1}}`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := ParseScenario([]byte(tc.in)); err == nil {
				t.Errorf("accepted %s", tc.name)
			}
		})
	}
}

func TestParseScenarioHostClasses(t *testing.T) {
	in := `{
	  "hostClasses": [{"count": 2, "cores": 32}, {"count": 4}],
	  "fleets": [{"kind": "flat", "count": 6, "demand": 0.5}],
	  "horizonHours": 1
	}`
	sc, err := ParseScenario([]byte(in))
	if err != nil {
		t.Fatal(err)
	}
	res, err := sc.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Hosts != 6 {
		t.Fatalf("hosts = %d", res.Hosts)
	}
}

func TestParseScenarioDeterministicFleets(t *testing.T) {
	a, err := ParseScenario([]byte(sampleScenarioFile))
	if err != nil {
		t.Fatal(err)
	}
	b, err := ParseScenario([]byte(sampleScenarioFile))
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.VMs {
		if a.VMs[i].Trace.At(3*time.Hour) != b.VMs[i].Trace.At(3*time.Hour) {
			t.Fatal("scenario file fleets not deterministic")
		}
	}
	// Two fleets of the same kind in one file must differ.
	in := `{"hosts":4,"fleets":[{"kind":"diurnal","count":2},{"kind":"diurnal","count":2}],"horizonHours":1}`
	sc, err := ParseScenario([]byte(in))
	if err != nil {
		t.Fatal(err)
	}
	if sc.VMs[0].Trace.At(6*time.Hour) == sc.VMs[2].Trace.At(6*time.Hour) {
		t.Fatal("same-kind fleets share a seed")
	}
}

// A typo'd key must be rejected, not silently ignored: the misspelled
// knob would otherwise fall back to its default and the run would
// measure something other than what the file asked for.
func TestParseScenarioRejectsUnknownKeys(t *testing.T) {
	cases := []struct {
		name string
		in   string
	}{
		{"misspelled telemetryCap", `{"hosts":4,"fleets":[{"kind":"flat","count":2}],"telemtryCap":100}`},
		{"misspelled horizon", `{"hosts":4,"horizonHrs":6,"fleets":[{"kind":"flat","count":2}]}`},
		{"unknown top-level", `{"hosts":4,"fleets":[{"kind":"flat","count":2}],"bogus":true}`},
		{"unknown nested manager", `{"hosts":4,"fleets":[{"kind":"flat","count":2}],"manager":{"periodMins":5}}`},
		{"unknown event field", `{"hosts":4,"fleets":[{"kind":"flat","count":2}],"events":[{"at":"1h","action":"crash","hostID":1}]}`},
		{"unknown assert field", `{"hosts":4,"fleets":[{"kind":"flat","count":2}],"assert":[{"kind":"no-stranded-vm","grace":"1m"}]}`},
		{"trailing data", `{"hosts":4,"fleets":[{"kind":"flat","count":2}]} {"more":1}`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := ParseScenario([]byte(tc.in)); err == nil {
				t.Errorf("accepted %s", tc.name)
			}
		})
	}
}

// Events, assertions, faults and chaos sections round-trip from JSON
// into the scenario.
func TestParseScenarioScriptSections(t *testing.T) {
	in := `{
	  "hosts": 8,
	  "fleets": [{"kind": "diurnal", "count": 16}],
	  "horizonHours": 6,
	  "faults": {"rate": 0.1},
	  "ctrlplane": {"delayMS": 50, "loss": 0.01},
	  "events": [
	    {"at": "1h", "action": "crash", "target": "host-2..3", "repair": "20m"},
	    {"at": "2h", "action": "demand-surge", "factor": 2.5, "fleet": "web", "duration": "1h"},
	    {"at": "3h", "action": "power-cap", "watts": 1500, "duration": "1h"},
	    {"at": "4h", "action": "ctrl-degrade", "delay": "200ms", "loss": 0.05, "duration": "30m"}
	  ],
	  "assert": [
	    {"kind": "no-stranded-vm", "from": "2h", "over": "15m"},
	    {"kind": "power-below", "watts": 9000, "over": "1m"},
	    {"kind": "sla-violation-max", "frac": 0.25}
	  ],
	  "chaos": [
	    {"pattern": "az-outage", "intensity": 0.5, "at": "5h", "duration": "30m", "salt": 1}
	  ]
	}`
	sc, err := ParseScenario([]byte(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(sc.Script) != 4+1 {
		t.Fatalf("script has %d events, want 4 scripted + 1 chaos", len(sc.Script))
	}
	e := sc.Script[0]
	if e.At != time.Hour || e.Action != ActionCrash || e.Host != 2 || e.HostTo != 3 || e.Repair != 20*time.Minute {
		t.Fatalf("event 0: %+v", e)
	}
	if sc.Script[1].Factor != 2.5 || sc.Script[1].Fleet != "web" || sc.Script[1].Duration != time.Hour {
		t.Fatalf("event 1: %+v", sc.Script[1])
	}
	chaosEv := sc.Script[4]
	if chaosEv.Action != ActionCrash || chaosEv.At != 5*time.Hour {
		t.Fatalf("chaos event: %+v", chaosEv)
	}
	if len(sc.Asserts) != 3 {
		t.Fatalf("asserts: %d", len(sc.Asserts))
	}
	if sc.Asserts[0].From != 2*time.Hour || sc.Asserts[0].Over != 15*time.Minute {
		t.Fatalf("assert 0: %+v", sc.Asserts[0])
	}
	if sc.Faults == nil || !sc.Faults.Enabled() {
		t.Fatal("faults section dropped")
	}
	// And the scripted scenario runs end to end.
	res, err := sc.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Assertions) != 3 {
		t.Fatalf("verdicts: %d", len(res.Assertions))
	}
}

// A zero fault rate and a dormant chaos block leave their subsystems
// unbuilt, exactly like files without the sections.
func TestParseScenarioDormantSections(t *testing.T) {
	in := `{
	  "hosts": 4,
	  "fleets": [{"kind": "flat", "count": 4}],
	  "horizonHours": 1,
	  "faults": {"rate": 0},
	  "chaos": [{"pattern": "az-outage", "intensity": 0}]
	}`
	sc, err := ParseScenario([]byte(in))
	if err != nil {
		t.Fatal(err)
	}
	if sc.Faults != nil {
		t.Fatal("zero-rate faults materialized a config")
	}
	if len(sc.Script) != 0 {
		t.Fatal("dormant chaos emitted events")
	}
}

// Bad script sections are rejected with context.
func TestParseScenarioScriptErrors(t *testing.T) {
	cases := []struct {
		name string
		in   string
	}{
		{"bad event time", `{"hosts":4,"fleets":[{"kind":"flat","count":2}],"events":[{"at":"soon","action":"crash","target":"host-1"}]}`},
		{"bad target", `{"hosts":4,"fleets":[{"kind":"flat","count":2}],"events":[{"at":"1h","action":"crash","target":"rack-1"}]}`},
		{"target outside fleet", `{"hosts":4,"fleets":[{"kind":"flat","count":2}],"events":[{"at":"1h","action":"crash","target":"host-9"}]}`},
		{"unknown action", `{"hosts":4,"fleets":[{"kind":"flat","count":2}],"events":[{"at":"1h","action":"explode"}]}`},
		{"fault event without faults", `{"hosts":4,"fleets":[{"kind":"flat","count":2}],"events":[{"at":"1h","action":"fault-rate","rate":0.5}]}`},
		{"ctrl event without plane", `{"hosts":4,"fleets":[{"kind":"flat","count":2}],"events":[{"at":"1h","action":"ctrl-partition","duration":"10m"}]}`},
		{"bad assert kind", `{"hosts":4,"fleets":[{"kind":"flat","count":2}],"assert":[{"kind":"always-green"}]}`},
		{"bad assert window", `{"hosts":4,"fleets":[{"kind":"flat","count":2}],"assert":[{"kind":"no-stranded-vm","from":"2h","until":"1h"}]}`},
		{"unknown chaos pattern", `{"hosts":4,"fleets":[{"kind":"flat","count":2}],"chaos":[{"pattern":"meteor","intensity":1}]}`},
		{"chaos needs faults", `{"hosts":4,"fleets":[{"kind":"flat","count":2}],"chaos":[{"pattern":"flaky-resume","intensity":1}]}`},
		{"bad fault rate", `{"hosts":4,"fleets":[{"kind":"flat","count":2}],"faults":{"rate":2}}`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := ParseScenario([]byte(tc.in)); err == nil {
				t.Errorf("accepted %s", tc.name)
			}
		})
	}
}
