package agilepower

import (
	"testing"
	"time"
)

const sampleScenarioFile = `{
  "name": "file-test",
  "hosts": 8,
  "fleets": [
    {"kind": "diurnal", "count": 16},
    {"kind": "spiky", "count": 8, "spikes": 2},
    {"kind": "replicated", "services": 2, "replicas": 3}
  ],
  "horizonHours": 6,
  "policy": "dpm-s3",
  "manager": {"periodMinutes": 3, "targetUtil": 0.65, "predictiveWake": true, "forecast": "ewma", "incremental": "off"},
  "churn": {"arrivalsPerHour": 2, "meanLifetimeHours": 1},
  "seed": 5
}`

func TestParseScenarioFull(t *testing.T) {
	sc, err := ParseScenario([]byte(sampleScenarioFile))
	if err != nil {
		t.Fatal(err)
	}
	if sc.Name != "file-test" || sc.Hosts != 8 || sc.Seed != 5 {
		t.Fatalf("header: %+v", sc)
	}
	if len(sc.VMs) != 16+8+6 {
		t.Fatalf("fleet size = %d", len(sc.VMs))
	}
	if sc.Horizon != 6*time.Hour {
		t.Fatalf("horizon = %v", sc.Horizon)
	}
	if sc.Manager.Policy.Name != "dpm-s3" {
		t.Fatalf("policy = %q", sc.Manager.Policy.Name)
	}
	if sc.Manager.Period != 3*time.Minute || sc.Manager.TargetUtil != 0.65 {
		t.Fatalf("manager: %+v", sc.Manager)
	}
	if !sc.Manager.PredictiveWake {
		t.Fatal("predictive not set")
	}
	if sc.Manager.Forecast.Kind != ForecastEWMA {
		t.Fatalf("forecast = %v", sc.Manager.Forecast.Kind)
	}
	if sc.Manager.Incremental != IncrementalOff {
		t.Fatalf("incremental = %v", sc.Manager.Incremental)
	}
	if sc.Churn == nil || sc.Churn.ArrivalsPerHour != 2 || sc.Churn.MeanLifetime != time.Hour {
		t.Fatalf("churn: %+v", sc.Churn)
	}
	// And it runs.
	res, err := sc.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Energy <= 0 {
		t.Fatal("no energy")
	}
}

func TestParseScenarioErrors(t *testing.T) {
	cases := []struct {
		name string
		in   string
	}{
		{"bad json", `{`},
		{"no fleets", `{"hosts":4,"fleets":[]}`},
		{"bad fleet kind", `{"hosts":4,"fleets":[{"kind":"quantum","count":2}]}`},
		{"bad policy", `{"hosts":4,"policy":"yolo","fleets":[{"kind":"flat","count":2}]}`},
		{"bad forecast", `{"hosts":4,"fleets":[{"kind":"flat","count":2}],"manager":{"forecast":"crystal-ball"}}`},
		{"bad incremental", `{"hosts":4,"fleets":[{"kind":"flat","count":2}],"manager":{"incremental":"maybe"}}`},
		{"replicated missing params", `{"hosts":4,"fleets":[{"kind":"replicated"}]}`},
		{"no hosts", `{"fleets":[{"kind":"flat","count":2}]}`},
		{"bad churn", `{"hosts":4,"fleets":[{"kind":"flat","count":2}],"churn":{"arrivalsPerHour":-1}}`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := ParseScenario([]byte(tc.in)); err == nil {
				t.Errorf("accepted %s", tc.name)
			}
		})
	}
}

func TestParseScenarioHostClasses(t *testing.T) {
	in := `{
	  "hostClasses": [{"count": 2, "cores": 32}, {"count": 4}],
	  "fleets": [{"kind": "flat", "count": 6, "demand": 0.5}],
	  "horizonHours": 1
	}`
	sc, err := ParseScenario([]byte(in))
	if err != nil {
		t.Fatal(err)
	}
	res, err := sc.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Hosts != 6 {
		t.Fatalf("hosts = %d", res.Hosts)
	}
}

func TestParseScenarioDeterministicFleets(t *testing.T) {
	a, err := ParseScenario([]byte(sampleScenarioFile))
	if err != nil {
		t.Fatal(err)
	}
	b, err := ParseScenario([]byte(sampleScenarioFile))
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.VMs {
		if a.VMs[i].Trace.At(3*time.Hour) != b.VMs[i].Trace.At(3*time.Hour) {
			t.Fatal("scenario file fleets not deterministic")
		}
	}
	// Two fleets of the same kind in one file must differ.
	in := `{"hosts":4,"fleets":[{"kind":"diurnal","count":2},{"kind":"diurnal","count":2}],"horizonHours":1}`
	sc, err := ParseScenario([]byte(in))
	if err != nil {
		t.Fatal(err)
	}
	if sc.VMs[0].Trace.At(6*time.Hour) == sc.VMs[2].Trace.At(6*time.Hour) {
		t.Fatal("same-kind fleets share a seed")
	}
}
