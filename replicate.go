package agilepower

import (
	"context"
	"fmt"
	"math"

	"agilepower/internal/parallel"
)

// Stat summarizes one metric across replicated runs.
type Stat struct {
	Mean, Std, Min, Max float64
	N                   int
}

func newStat(vals []float64) Stat {
	if len(vals) == 0 {
		return Stat{}
	}
	s := Stat{N: len(vals), Min: vals[0], Max: vals[0]}
	sum := 0.0
	for _, v := range vals {
		sum += v
		if v < s.Min {
			s.Min = v
		}
		if v > s.Max {
			s.Max = v
		}
	}
	s.Mean = sum / float64(len(vals))
	if len(vals) > 1 {
		ss := 0.0
		for _, v := range vals {
			d := v - s.Mean
			ss += d * d
		}
		s.Std = math.Sqrt(ss / float64(len(vals)-1))
	}
	return s
}

// String renders "mean ± std".
func (s Stat) String() string {
	return fmt.Sprintf("%.3f ± %.3f", s.Mean, s.Std)
}

// Replication aggregates one scenario run under several seeds — the
// statistical-rigor companion to single runs: simulation conclusions
// should not hinge on one random workload draw.
type Replication struct {
	Runs []*Result

	EnergyKWh         Stat
	Satisfaction      Stat
	ViolationFraction Stat
	Migrations        Stat
	PowerActions      Stat
}

// RunReplicated executes the scenario once per seed. When fleet is
// non-nil it regenerates the VM population for each seed (fleet
// builders like DiurnalFleet are deterministic in their seed); when
// nil, the same VMs are reused and only engine-driven randomness
// (churn, jitter) varies. The per-seed runs execute concurrently on
// up to GOMAXPROCS workers; Runs and the aggregate statistics come
// back in seed order regardless of completion order, so the outcome
// is identical to a sequential loop (use RunReplicatedWorkers to pin
// the worker count).
func (s Scenario) RunReplicated(seeds []uint64, fleet func(seed uint64) []VMSpec) (*Replication, error) {
	return s.RunReplicatedWorkers(0, seeds, fleet)
}

// RunReplicatedWorkers is RunReplicated with an explicit concurrency
// bound (workers <= 0 means GOMAXPROCS, 1 means sequential). fleet is
// called once per seed, possibly from different goroutines, so it
// must not capture mutable state; the standard builders (DiurnalFleet
// etc.) derive everything from their seed argument.
func (s Scenario) RunReplicatedWorkers(workers int, seeds []uint64, fleet func(seed uint64) []VMSpec) (*Replication, error) {
	if len(seeds) == 0 {
		return nil, fmt.Errorf("agilepower: replication needs at least one seed")
	}
	// Same-fleet mode reuses one world across seeds: the world is
	// seed-independent (construction consumes no randomness), so it is
	// built once and forked per seed. Per-seed fleets rebuild the world
	// cold, as before.
	var proto *Prototype
	if fleet == nil && !s.ColdWorld {
		if p, err := s.Prototype(); err == nil {
			proto = p
		}
	}
	runs, err := parallel.Map(context.Background(), len(seeds), workers,
		func(_ context.Context, i int) (*Result, error) {
			sc := s
			sc.Seed = seeds[i]
			if fleet != nil {
				sc.VMs = fleet(seeds[i])
			}
			res, err := runScenario(proto, sc)
			if err != nil {
				return nil, fmt.Errorf("seed %d: %w", seeds[i], err)
			}
			return res, nil
		})
	if err != nil {
		return nil, err
	}
	rep := &Replication{Runs: runs}
	energy := make([]float64, len(runs))
	sat := make([]float64, len(runs))
	viol := make([]float64, len(runs))
	migr := make([]float64, len(runs))
	actions := make([]float64, len(runs))
	for i, res := range runs {
		energy[i] = res.EnergyKWh()
		sat[i] = res.Satisfaction
		viol[i] = res.ViolationFraction
		migr[i] = float64(res.Migrations.Completed)
		actions[i] = float64(res.Sleeps + res.Wakes)
	}
	rep.EnergyKWh = newStat(energy)
	rep.Satisfaction = newStat(sat)
	rep.ViolationFraction = newStat(viol)
	rep.Migrations = newStat(migr)
	rep.PowerActions = newStat(actions)
	return rep, nil
}

// Seeds returns [base, base+1, …, base+n-1], a convenient seed list
// for replication.
func Seeds(base uint64, n int) []uint64 {
	out := make([]uint64, n)
	for i := range out {
		out[i] = base + uint64(i)
	}
	return out
}
