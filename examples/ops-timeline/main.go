// Ops-timeline: drive a live session the way an operator would — a
// power-managed morning, a maintenance window on one host, a couple of
// late VM provisions — and then read the audit trail back as a
// timeline. Shows the interactive Session API and the event log.
//
//	go run ./examples/ops-timeline
package main

import (
	"fmt"
	"log"
	"os"
	"time"

	"agilepower"
	"agilepower/internal/events"
)

func main() {
	se, err := agilepower.Scenario{
		Name:    "ops-timeline",
		Hosts:   6,
		VMs:     agilepower.DiurnalFleet(24, 11),
		Manager: agilepower.ManagerConfig{Policy: agilepower.DPMS3},
		Seed:    11,
	}.Start()
	if err != nil {
		log.Fatal(err)
	}

	status := func(label string) {
		fmt.Printf("%8s | %2d hosts active | %6.0f W | demand %5.1f cores\n",
			label, se.ActiveHosts(), se.PowerW(), se.DemandCores())
	}

	// Overnight: the manager consolidates.
	must(se.RunUntil(4 * time.Hour))
	status("04:00")

	// 06:00 — operations wants host 2 for a firmware update.
	must(se.RunUntil(6 * time.Hour))
	if err := se.EnterMaintenance(2); err != nil {
		// Host 2 may be parked at 6am; pick the first available one.
		log.Printf("host 2: %v (picking another)", err)
	}
	must(se.Step(20 * time.Minute))
	fmt.Printf("06:20  | maintenance drained: %v\n", se.MaintenanceReady(2))

	// 09:30 — two new VMs arrive mid-ramp.
	must(se.RunUntil(9*time.Hour + 30*time.Minute))
	status("09:30")
	for i := 0; i < 2; i++ {
		id, err := se.AddVM(agilepower.VMSpec{
			Name:     fmt.Sprintf("new-app-%d", i),
			VCPUs:    4,
			MemoryGB: 8,
			Trace:    agilepower.ConstantTrace(1.5),
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("09:30  | provisioned vm %d\n", id)
	}

	// 11:00 — firmware done, host back to service.
	must(se.RunUntil(11 * time.Hour))
	if se.MaintenanceReady(2) {
		must(se.ExitMaintenance(2))
		fmt.Println("11:00  | host 2 back in service")
	}

	// Run out the day.
	must(se.RunUntil(24 * time.Hour))
	status("24:00")
	res := se.Result()

	fmt.Printf("\nday summary: %.1f kWh, satisfaction %.2f%%, %d migrations, %d sleeps / %d wakes\n",
		res.EnergyKWh(), 100*res.Satisfaction, res.Migrations.Completed, res.Sleeps, res.Wakes)

	// The audit trail around the maintenance window.
	fmt.Println("\nevents 06:00–06:30:")
	for _, e := range res.Events.Filter(events.Between(6*time.Hour, 6*time.Hour+30*time.Minute)) {
		fmt.Println("  " + e.String())
	}

	fmt.Println("\nevent totals:")
	counts := res.Events.Counts()
	for _, k := range []events.Kind{
		events.VMPlaced, events.MigrationStarted, events.MigrationCompleted,
		events.HostSleeping, events.HostWaking, events.HostSettled,
	} {
		fmt.Printf("  %-20s %d\n", k, counts[k])
	}
	_ = os.Stdout
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
