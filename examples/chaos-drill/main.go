// Chaos-drill: run the az-outage chaos pattern programmatically and
// watch the fleet ride through it — power and active hosts before the
// hit, during the outage, and after the repair — then read the
// assertion verdicts and the audit trail around the blast window.
// Shows Scenario.WithChaos, scripted runs on a live Session, and the
// assertion engine.
//
//	go run ./examples/chaos-drill
package main

import (
	"fmt"
	"log"
	"time"

	"agilepower"
	"agilepower/internal/events"
)

func main() {
	const (
		outageAt  = 2 * time.Hour
		outageDur = time.Hour
	)

	base := agilepower.Scenario{
		Name:    "chaos-drill",
		Hosts:   24,
		VMs:     append(agilepower.DiurnalFleet(40, 7), agilepower.SpikyFleet(20, 4, 7)...),
		Horizon: 6 * time.Hour,
		Seed:    7,
		Manager: agilepower.ManagerConfig{Policy: agilepower.DPMS3},
		Asserts: []agilepower.AssertSpec{
			// A crash may strand VMs; recovery must finish within 15
			// minutes of any sustained stranding once repairs land.
			{Kind: agilepower.AssertNoStrandedVM, From: outageAt + outageDur + 30*time.Minute, Over: 15 * time.Minute},
			{Kind: agilepower.AssertSLAViolationMax, Frac: 0.25},
		},
	}

	// Compile the named pattern into a concrete crash script. Same
	// scenario seed + params + salt → byte-identical outage, always.
	sc, err := base.WithChaos(agilepower.ChaosParams{
		Pattern:   agilepower.ChaosAZOutage,
		Intensity: 0.5,
		At:        outageAt,
		Duration:  outageDur,
		Salt:      2,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("compiled outage script:")
	for _, e := range sc.Script {
		fmt.Println("  " + e.String())
	}

	se, err := sc.Start()
	if err != nil {
		log.Fatal(err)
	}
	status := func(label string) {
		fmt.Printf("%8s | %2d hosts active | %6.0f W | demand %5.1f cores\n",
			label, se.ActiveHosts(), se.PowerW(), se.DemandCores())
	}

	fmt.Println("\nrecovery timeline:")
	must(se.RunUntil(outageAt - time.Minute))
	status("T-1m")
	must(se.RunUntil(outageAt + 5*time.Minute))
	status("T+5m") // blast landed: the AZ is dark, survivors absorb the load
	must(se.RunUntil(outageAt + outageDur/2))
	status("T+30m")
	must(se.RunUntil(outageAt + outageDur + 10*time.Minute))
	status("T+70m") // repairs landed: crashed hosts boot and rejoin
	must(se.RunUntil(sc.Horizon))
	status("end")

	res := se.Result()
	fmt.Printf("\ndrill summary: %.1f kWh, satisfaction %.1f%%, %d crash(es), %.1f stranded VM·h, %d stranded at end\n",
		res.EnergyKWh(), 100*res.Satisfaction, res.Crashes, res.StrandedVMHours, res.StrandedVMs)

	fmt.Println("\nassertions:")
	for _, ar := range res.Assertions {
		fmt.Println("  " + ar.String())
	}

	fmt.Println("\naudit trail around the blast:")
	for _, e := range res.Events.Filter(events.Between(outageAt, outageAt+10*time.Minute)) {
		fmt.Println("  " + e.String())
	}
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
