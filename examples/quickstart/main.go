// Quickstart: run one day of power-aware management over a small
// cluster and print the outcome.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"time"

	"agilepower"
)

func main() {
	// A 10-host cluster running 40 diurnal enterprise VMs, managed by
	// the paper's DPM-S3 policy: consolidate at night, park idle hosts
	// in suspend-to-RAM, wake them for the morning ramp.
	sc := agilepower.Scenario{
		Name:    "quickstart",
		Hosts:   10,
		VMs:     agilepower.DiurnalFleet(40, 1),
		Horizon: 24 * time.Hour,
		Manager: agilepower.ManagerConfig{Policy: agilepower.DPMS3},
	}
	res, err := sc.Run()
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("policy:            %s\n", res.Policy)
	fmt.Printf("energy:            %.2f kWh\n", res.EnergyKWh())
	fmt.Printf("mean power:        %.0f W\n", res.MeanPowerW)
	fmt.Printf("demand satisfied:  %.2f%%\n", 100*res.Satisfaction)
	fmt.Printf("SLA violations:    %.2f%% of VM-time\n", 100*res.ViolationFraction)
	fmt.Printf("migrations:        %d\n", res.Migrations.Completed)
	fmt.Printf("power actions:     %d sleeps, %d wakes\n", res.Sleeps, res.Wakes)

	// Compare against leaving every host on.
	static := sc
	static.Manager.Policy = agilepower.Static
	base, err := static.Run()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nstatic baseline:   %.2f kWh\n", base.EnergyKWh())
	fmt.Printf("savings:           %.1f%%\n", 100*res.SavingsVs(base))

	if oracleE, err := res.OracleEnergy(); err == nil {
		fmt.Printf("oracle bound:      %.2f kWh (perfect knowledge, zero-latency transitions)\n",
			oracleE.KWh())
	}
}
