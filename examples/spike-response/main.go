// Spike-response: the paper's agility argument in isolation. A
// consolidated cluster is hit by a correlated flash crowd; the example
// traces minute-by-minute how much demand each policy leaves unserved
// while capacity wakes up. Low-latency S3 restores service in tens of
// seconds; traditional S5 takes minutes of full boot.
//
//	go run ./examples/spike-response
package main

import (
	"fmt"
	"log"
	"time"

	"agilepower"
)

func main() {
	const spikeAt = 2 * time.Hour
	// 24 API VMs surge together from 0.3 to 4 cores (+89 cores on a
	// 128-core fleet) for 15 minutes.
	fleet := agilepower.SpikyFleetAt(24, []time.Duration{spikeAt}, 99)
	sc := agilepower.Scenario{
		Name:    "spike-response",
		Hosts:   8,
		VMs:     fleet,
		Horizon: 3 * time.Hour,
		Seed:    99,
	}

	results, err := sc.RunPolicies([]agilepower.Policy{
		agilepower.NoPM, agilepower.DPMS5, agilepower.DPMS3,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%-10s %10s %13s %16s %8s\n",
		"policy", "energy", "satisfaction", "unmet_core_hours", "wakes")
	for _, r := range results {
		fmt.Printf("%-10s %6.2f kWh %12.2f%% %16.2f %8d\n",
			r.Policy, r.EnergyKWh(), 100*r.Satisfaction, r.UnmetCoreHours, r.Wakes)
	}

	// Minute-by-minute service through the surge window.
	fmt.Printf("\nunserved demand (cores) around the spike at %v:\n", spikeAt)
	fmt.Printf("%6s %8s %8s %8s\n", "t", "nopm", "dpm-s5", "dpm-s3")
	for m := -2; m <= 20; m += 2 {
		at := spikeAt + time.Duration(m)*time.Minute
		row := fmt.Sprintf("%+4dm ", m)
		for _, r := range results {
			unserved := r.Demand.At(at) - r.Delivered.At(at)
			if unserved < 0 {
				unserved = 0
			}
			row += fmt.Sprintf(" %8.1f", unserved)
		}
		fmt.Println(row)
	}
	fmt.Println("\nthe S3 column collapses to zero within a wake latency (~15s) plus a")
	fmt.Println("rebalance; the S5 column stays high through a ~3-minute server boot.")
}
