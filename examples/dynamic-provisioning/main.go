// Dynamic-provisioning: VMs arrive as a Poisson stream onto a
// power-managed cluster and depart after random lifetimes. The example
// shows the tenant-visible question — how long does a new VM wait for
// capacity? — alongside the energy bill, for every policy. The paper's
// pitch depends on the answer: power management must not undo
// virtualization's provisioning agility.
//
//	go run ./examples/dynamic-provisioning
package main

import (
	"fmt"
	"log"
	"time"

	"agilepower"
)

func main() {
	base := agilepower.Scenario{
		Name:    "dynamic-provisioning",
		Hosts:   16,
		VMs:     agilepower.DiurnalFleet(48, 5),
		Horizon: 24 * time.Hour,
		Seed:    5,
		Churn: &agilepower.ChurnSpec{
			ArrivalsPerHour: 10,
			MeanLifetime:    3 * time.Hour,
			DemandCores:     2,
		},
	}

	fmt.Printf("%-10s %9s %8s %8s %10s %10s %12s\n",
		"policy", "arrived", "placed", "departed", "prov_p50", "prov_p95", "energy_kwh")
	for _, p := range agilepower.Policies() {
		sc := base
		sc.Manager.Policy = p
		r, err := sc.Run()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-10s %9d %8d %8d %10s %10s %12.1f\n",
			r.Policy, r.Churn.Arrived, r.Churn.Placed, r.Churn.Departed,
			r.Churn.ProvisionP50.Round(time.Second),
			r.Churn.ProvisionP95.Round(time.Second),
			r.EnergyKWh())
	}
	fmt.Println("\nprovisioning latency is dominated by the monitoring tick plus, when the")
	fmt.Println("cluster is consolidated, one wake: ~15s for S3, minutes for S5 boots.")

	// Statistical check across seeds: conclusions should survive
	// different workload draws.
	fmt.Println("\nreplicated DPM-S3 across 5 seeds:")
	sc := base
	sc.Manager.Policy = agilepower.DPMS3
	rep, err := sc.RunReplicated(agilepower.Seeds(1, 5), func(seed uint64) []agilepower.VMSpec {
		return agilepower.DiurnalFleet(48, seed)
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  energy      %s kWh\n", rep.EnergyKWh)
	fmt.Printf("  satisfaction %s\n", rep.Satisfaction)
	fmt.Printf("  violations   %s\n", rep.ViolationFraction)
	fmt.Printf("  migrations   %s\n", rep.Migrations)
}
