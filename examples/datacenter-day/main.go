// Datacenter-day: the paper's end-to-end scenario — a full day of
// mixed enterprise load (diurnal web tier, flash-crowd API tier,
// periodic batch) on a 32-host cluster, compared across all four
// management policies, with hourly power charts.
//
//	go run ./examples/datacenter-day
package main

import (
	"fmt"
	"log"
	"os"
	"time"

	"agilepower"
)

func main() {
	sc := agilepower.Scenario{
		Name:    "datacenter-day",
		Hosts:   32,
		VMs:     agilepower.MixedFleet(160, 7),
		Horizon: 24 * time.Hour,
		Seed:    7,
	}
	results, err := sc.RunPolicies(agilepower.Policies())
	if err != nil {
		log.Fatal(err)
	}
	static := results[0]

	fmt.Printf("%-10s %10s %9s %13s %11s %11s\n",
		"policy", "energy", "savings", "satisfaction", "violations", "migrations")
	for _, r := range results {
		fmt.Printf("%-10s %7.1f kWh %8.1f%% %12.2f%% %10.2f%% %11d\n",
			r.Policy, r.EnergyKWh(), 100*r.SavingsVs(static),
			100*r.Satisfaction, 100*r.ViolationFraction, r.Migrations.Completed)
	}

	// Hourly power profile: demand shape vs what each policy draws.
	fmt.Printf("\nhour   demand  static_w  dpm_s5_w  dpm_s3_w  active_s3\n")
	for h := 0; h < 24; h++ {
		at := time.Duration(h) * time.Hour
		end := at + time.Hour
		fmt.Printf("%02d:00 %7.0f %9.0f %9.0f %9.0f %10.1f\n",
			h,
			static.Demand.TimeMean(at, end),
			static.Power.TimeMean(at, end),
			results[2].Power.TimeMean(at, end),
			results[3].Power.TimeMean(at, end),
			results[3].ActiveHosts.TimeMean(at, end))
	}

	if oracleE, err := static.OracleEnergy(); err == nil {
		fmt.Printf("\noracle bound: %.1f kWh (%.1f%% savings)\n",
			oracleE.KWh(), 100*(1-float64(oracleE)/float64(static.Energy)))
	}
	fmt.Fprintln(os.Stderr, "done")
}
