// Greenfield-scale: sizing a new deployment. Sweeps fleet size and
// packing headroom to show how savings and SLA risk trade as a
// power-managed cluster grows — the scale-out question the paper
// answers with simulation.
//
//	go run ./examples/greenfield-scale
package main

import (
	"fmt"
	"log"
	"time"

	"agilepower"
)

func main() {
	fmt.Println("== fleet size sweep (DPM-S3, diurnal fleet, 12h) ==")
	fmt.Printf("%6s %6s %9s %9s %13s %11s\n",
		"hosts", "vms", "static", "dpm-s3", "savings", "violations")
	for _, hosts := range []int{8, 16, 32, 64, 128} {
		sc := agilepower.Scenario{
			Hosts:   hosts,
			VMs:     agilepower.DiurnalFleet(hosts*5, 3),
			Horizon: 12 * time.Hour,
			Seed:    3,
		}
		res, err := sc.RunPolicies([]agilepower.Policy{agilepower.Static, agilepower.DPMS3})
		if err != nil {
			log.Fatal(err)
		}
		static, dpm := res[0], res[1]
		fmt.Printf("%6d %6d %6.1fkWh %6.1fkWh %12.1f%% %10.2f%%\n",
			hosts, hosts*5, static.EnergyKWh(), dpm.EnergyKWh(),
			100*dpm.SavingsVs(static), 100*dpm.ViolationFraction)
	}

	fmt.Println("\n== packing headroom sweep (32 hosts, mixed fleet, 12h) ==")
	fmt.Printf("%12s %9s %13s %11s\n", "target_util", "energy", "satisfaction", "violations")
	base := agilepower.Scenario{
		Hosts:   32,
		VMs:     agilepower.MixedFleet(160, 3),
		Horizon: 12 * time.Hour,
		Seed:    3,
	}
	for _, target := range []float64{0.55, 0.65, 0.75, 0.85} {
		sc := base
		sc.Manager = agilepower.ManagerConfig{
			Policy:        agilepower.DPMS3,
			TargetUtil:    target,
			WakeThreshold: target + 0.1,
		}
		r, err := sc.Run()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%12.2f %6.1fkWh %12.2f%% %10.2f%%\n",
			target, r.EnergyKWh(), 100*r.Satisfaction, 100*r.ViolationFraction)
	}
	fmt.Println("\ntighter packing saves more energy but concentrates spike risk;")
	fmt.Println("pick the headroom whose violation level your SLOs tolerate.")
}
