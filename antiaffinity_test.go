package agilepower

import (
	"testing"
	"time"

	"agilepower/internal/events"
)

func TestReplicatedFleetGroups(t *testing.T) {
	fleet := ReplicatedFleet(4, 3, 1)
	if len(fleet) != 12 {
		t.Fatalf("fleet size = %d", len(fleet))
	}
	groups := map[string]int{}
	for _, v := range fleet {
		if v.Group == "" {
			t.Fatal("replica without group")
		}
		groups[v.Group]++
	}
	if len(groups) != 4 {
		t.Fatalf("groups = %d", len(groups))
	}
	for g, n := range groups {
		if n != 3 {
			t.Fatalf("group %s has %d members", g, n)
		}
	}
}

// Anti-affinity must hold at every moment of a consolidating run: no
// two replicas of one service ever share a host, even while the
// manager packs aggressively.
func TestAntiAffinityHeldThroughConsolidation(t *testing.T) {
	sc := Scenario{
		Hosts:   8,
		VMs:     ReplicatedFleet(4, 3, 2),
		Horizon: 8 * time.Hour,
		Manager: ManagerConfig{Policy: DPMS3},
		Seed:    2,
	}
	res, err := sc.Run()
	if err != nil {
		t.Fatal(err)
	}
	// The manager consolidated (light load) but never below the
	// 3-host replica floor.
	trough := res.ActiveHosts.At(6 * time.Hour)
	if trough > 4 {
		t.Fatalf("no consolidation: %v active hosts", trough)
	}
	if trough < 3 {
		t.Fatalf("replica floor violated: %v active hosts for 3 replicas", trough)
	}
	if res.Migrations.Completed == 0 {
		t.Fatal("nothing migrated; constraint untested")
	}
	// Replay the audit log to verify no co-location ever happened:
	// track placements over time per group.
	onHost := map[int]int{}     // vm -> host
	vmGroup := map[int]string{} // vm id -> group (ids assigned in fleet order)
	for i := range sc.VMs {
		vmGroup[i+1] = sc.VMs[i].Group
	}
	check := func(at time.Duration) {
		byHostGroup := map[[2]interface{}]int{}
		for vmID, h := range onHost {
			key := [2]interface{}{h, vmGroup[vmID]}
			byHostGroup[key]++
			if byHostGroup[key] > 1 {
				t.Fatalf("at %v: two %q replicas on host %d", at, vmGroup[vmID], h)
			}
		}
	}
	for _, e := range res.Events.All() {
		switch e.Kind {
		case events.VMPlaced, events.MigrationCompleted:
			onHost[e.VM] = e.Host
		case events.VMRemoved:
			delete(onHost, e.VM)
		}
		check(e.At)
	}
}

func TestAntiAffinityInitialPlacementRetries(t *testing.T) {
	// 3 replicas on 3 hosts: round-robin would wrap a second service's
	// replicas onto occupied hosts; the retry logic must still find
	// conflict-free slots.
	sc := Scenario{
		Hosts:   3,
		VMs:     ReplicatedFleet(2, 3, 3),
		Horizon: time.Hour,
		Manager: ManagerConfig{Policy: Static},
	}
	if _, err := sc.Run(); err != nil {
		t.Fatalf("placement failed: %v", err)
	}
}

func TestAntiAffinityInfeasibleFleetRejected(t *testing.T) {
	// 4 replicas cannot spread over 3 hosts.
	sc := Scenario{
		Hosts:   3,
		VMs:     ReplicatedFleet(1, 4, 1),
		Horizon: time.Hour,
	}
	if _, err := sc.Run(); err == nil {
		t.Fatal("infeasible replica fleet accepted")
	}
}
